"""QoS layer: tenants, admission control, weighted fair scheduling.

The pipelined channel (PR 4) bounds *how much* work is in flight; this
module decides *whose* work gets in and in *what order* — the serving
half of the ROADMAP's "millions of users" story. Three cooperating
pieces:

* :class:`TenantContext` tags every offload with a tenant id, a priority
  class and an optional per-invoke deadline. The context travels on a
  contextvar (:func:`tenant_scope`), so backends need no signature
  changes.
* :class:`AdmissionController` fast-fails work *before serialization*:
  a per-tenant token bucket enforces rate limits, and deadline-aware
  admission rejects an invoke whose deadline cannot cover the kernel's
  rolling p95 service time (fed by the continuous profiler). A rejected
  request raises :class:`~repro.errors.AdmissionRejectedError` in
  microseconds instead of burning a window slot and a deadline.
* :class:`FairInflightWindow` replaces the FIFO
  :class:`~repro.backends.base.InflightWindow` admission with
  deficit-weighted round robin across per-tenant queues: each tenant
  accrues quantum proportional to its weight every round and spends one
  unit per granted slot, so window capacity converges to the configured
  weight shares while no nonempty queue ever starves. When the queue
  backlog exceeds ``max_queue_depth`` the scheduler sheds load
  priority-ordered, lowest class first (``offload.shed`` telemetry).

The layer is opt-in: ``Runtime(backend, qos=QoSConfig(...))`` (or
``offload.init(backend, qos=...)``) installs the fair window through the
:meth:`~repro.backends.base.Backend.install_window` seam; without a
config the runtime behaves exactly as before.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.backends.base import DEFAULT_INFLIGHT_LIMIT, InflightWindow
from repro.errors import (
    DeadlineInfeasibleError,
    LoadShedError,
    OffloadError,
    OffloadTimeoutError,
    RateLimitedError,
)
from repro.telemetry import flightrecorder
from repro.telemetry import recorder as telemetry

__all__ = [
    "BEST_EFFORT",
    "STANDARD",
    "PREMIUM",
    "AdmissionController",
    "FairInflightWindow",
    "QoSConfig",
    "TenantContext",
    "TenantPolicy",
    "TokenBucket",
    "current_tenant",
    "profiled_service_time",
    "tenant_scope",
]

#: Priority classes, higher wins. Any int works; these are the
#: conventional three bands (shed order: BEST_EFFORT first).
BEST_EFFORT = 0
STANDARD = 1
PREMIUM = 2

#: Tenant id used when the caller never names one.
DEFAULT_TENANT_ID = "default"


@dataclass(frozen=True)
class TenantContext:
    """Identity and QoS parameters of one offload's originator.

    Attributes
    ----------
    tenant:
        Stable tenant id (the fair-queue and rate-limit key; also the
        per-tenant SLO dimension).
    priority:
        Priority class — higher classes are shed last under overload.
    weight:
        Fair-share weight: window slots converge to
        ``weight / sum(weights of active tenants)``. Must be positive.
    deadline:
        Optional per-invoke deadline budget in seconds, measured from
        admission. Deadline-aware admission rejects the invoke up front
        when the kernel's rolling service-time estimate exceeds it.
    """

    tenant: str = DEFAULT_TENANT_ID
    priority: int = STANDARD
    weight: float = 1.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise OffloadError("tenant id must be non-empty")
        if self.weight <= 0:
            raise OffloadError(f"tenant weight must be positive, got {self.weight}")
        if self.deadline is not None and self.deadline <= 0:
            raise OffloadError(
                f"tenant deadline must be positive, got {self.deadline}"
            )


#: The ambient tenant of the current thread/task (set by the runtime
#: around post_invoke so the fair window sees it without new backend
#: signatures).
_CURRENT_TENANT: contextvars.ContextVar["str | TenantContext | None"] = (
    contextvars.ContextVar("repro_tenant", default=None)
)


def current_tenant() -> "str | TenantContext | None":
    """The ambient tenant, or ``None`` outside a scope.

    A bare tenant id set via ``tenant_scope("name")`` is returned as the
    string; consumers resolve it against their :class:`QoSConfig` (so
    the same scope picks up each runtime's policy for that tenant).
    """
    return _CURRENT_TENANT.get()


@contextlib.contextmanager
def tenant_scope(ctx: "str | TenantContext | None") -> Iterator[None]:
    """Make ``ctx`` the ambient tenant for the duration of the block.

    Accepts a full :class:`TenantContext` or a bare tenant id; a bare id
    is resolved to the runtime's policy for that tenant at each offload.
    """
    token = _CURRENT_TENANT.set(ctx)
    try:
        yield
    finally:
        _CURRENT_TENANT.reset(token)


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant configuration inside a :class:`QoSConfig`.

    ``rate``/``burst`` configure the tenant's token bucket in invokes
    per second / invokes; ``None`` rate disables rate limiting for the
    tenant. ``deadline`` is the default per-invoke deadline budget.
    """

    weight: float = 1.0
    priority: int = STANDARD
    rate: float | None = None
    burst: float | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise OffloadError(f"weight must be positive, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise OffloadError(f"rate must be positive, got {self.rate}")
        if self.burst is not None and self.burst <= 0:
            raise OffloadError(f"burst must be positive, got {self.burst}")


@dataclass(frozen=True)
class QoSConfig:
    """Declarative QoS setup for ``Runtime(qos=...)`` / ``offload.init``.

    Parameters
    ----------
    tenants:
        Known tenants and their policies; unknown tenant ids fall back
        to ``default_policy``.
    default_policy:
        Policy applied to tenants not listed in ``tenants``.
    window:
        In-flight window limit for the fair scheduler; ``None`` keeps
        the backend's current limit.
    max_queue_depth:
        Total queued (not yet admitted) invokes across all tenants
        beyond which the scheduler sheds load, lowest priority first.
    deadline_admission:
        Whether to reject invokes whose deadline cannot cover the
        rolling service-time estimate.
    admission_percentile:
        Percentile of the kernel's rolling service-time profile used as
        the estimate (the "p95 service time" of the admission rule).
    admission_min_samples:
        Completed offloads of a kernel required before its estimate is
        trusted; below it deadline admission always admits.
    headroom:
        Safety factor on the estimate: reject when
        ``estimate * headroom > deadline``.
    """

    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    window: int | None = None
    max_queue_depth: int = 256
    deadline_admission: bool = True
    admission_percentile: float = 95.0
    admission_min_samples: int = 10
    headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.window is not None and self.window < 1:
            raise OffloadError(f"window must be positive, got {self.window}")
        if self.max_queue_depth < 1:
            raise OffloadError(
                f"max_queue_depth must be positive, got {self.max_queue_depth}"
            )
        if not 0.0 < self.admission_percentile <= 100.0:
            raise OffloadError(
                "admission_percentile must be in (0, 100], got "
                f"{self.admission_percentile}"
            )
        if self.headroom <= 0:
            raise OffloadError(f"headroom must be positive, got {self.headroom}")

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The effective :class:`TenantPolicy` of ``tenant``."""
        return self.tenants.get(tenant, self.default_policy)

    def context_for(
        self, tenant: "str | TenantContext | None"
    ) -> TenantContext:
        """Resolve a caller-supplied tenant into a full context.

        A bare tenant id picks up weight/priority/deadline from its
        policy; an explicit :class:`TenantContext` is taken as-is;
        ``None`` resolves the default tenant.
        """
        if isinstance(tenant, TenantContext):
            return tenant
        tenant_id = tenant if tenant is not None else DEFAULT_TENANT_ID
        policy = self.policy_for(tenant_id)
        return TenantContext(
            tenant=tenant_id,
            priority=policy.priority,
            weight=policy.weight,
            deadline=policy.deadline,
        )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s up to ``burst`` capacity.

    Thread-safe; the clock is injectable so tests replay exactly.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise OffloadError(
                f"token bucket needs positive rate/burst, got {rate}/{burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._stamp)
            self._stamp = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently available (refreshes the bucket)."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._stamp)
            self._stamp = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            return self._tokens


def profiled_service_time(
    percentile: float = 95.0, min_samples: int = 10
) -> Callable[[str], float | None]:
    """Service-time estimator backed by the continuous profiler.

    Returns a callable ``estimate(kernel) -> seconds | None`` reading
    the kernel's rolling ``offload`` round-trip histogram from the live
    recorder's :class:`~repro.telemetry.profile.KernelProfiler`.
    ``None`` means "no telemetry / not enough samples" — admission then
    admits, because rejecting on no data would fail closed.
    """

    def estimate(kernel: str) -> float | None:
        recorder = telemetry.get()
        if recorder is None:
            return None
        profile = recorder.profiles.profiles().get(kernel)
        if profile is None:
            return None
        hist = profile.phases().get("offload")
        if hist is None or hist.count < min_samples:
            return None
        return float(hist.percentile(percentile))

    return estimate


class AdmissionController:
    """Fast-fail gate run before an offload is serialized.

    Checks, in order: the tenant's token bucket (rate limit), then
    deadline feasibility against the kernel's rolling service-time
    estimate. Raises an :class:`~repro.errors.AdmissionRejectedError`
    subclass on refusal; counts both outcomes per tenant.
    """

    def __init__(
        self,
        config: QoSConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
        estimator: Callable[[str], float | None] | None = None,
    ) -> None:
        self.config = config
        self._clock = clock
        self._estimator = estimator if estimator is not None else (
            profiled_service_time(
                config.admission_percentile, config.admission_min_samples
            )
        )
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket | None] = {}
        self._admitted: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    def _bucket(self, tenant: str) -> TokenBucket | None:
        with self._lock:
            if tenant not in self._buckets:
                policy = self.config.policy_for(tenant)
                if policy.rate is None:
                    self._buckets[tenant] = None
                else:
                    burst = policy.burst if policy.burst is not None \
                        else max(1.0, policy.rate)
                    self._buckets[tenant] = TokenBucket(
                        policy.rate, burst, clock=self._clock
                    )
            return self._buckets[tenant]

    def admit(self, ctx: TenantContext, kernel: str) -> None:
        """Admit one invoke of ``kernel`` for ``ctx`` or raise.

        Raises
        ------
        RateLimitedError
            The tenant's token bucket is empty.
        DeadlineInfeasibleError
            ``ctx.deadline`` cannot cover the kernel's rolling
            service-time estimate (with the configured headroom).
        """
        bucket = self._bucket(ctx.tenant)
        if bucket is not None and not bucket.try_acquire():
            self._reject(ctx, kernel, "rate_limited")
            raise RateLimitedError(
                f"tenant {ctx.tenant!r} over its rate limit "
                f"({bucket.rate:g}/s, burst {bucket.burst:g})"
            )
        if self.config.deadline_admission and ctx.deadline is not None:
            estimate = self._estimator(kernel)
            if estimate is not None and \
                    estimate * self.config.headroom > ctx.deadline:
                self._reject(ctx, kernel, "deadline_infeasible")
                raise DeadlineInfeasibleError(
                    f"kernel {kernel!r} p{self.config.admission_percentile:g} "
                    f"service time {estimate * 1e3:.2f} ms cannot meet the "
                    f"{ctx.deadline * 1e3:.2f} ms deadline of tenant "
                    f"{ctx.tenant!r}"
                )
        with self._lock:
            self._admitted[ctx.tenant] = self._admitted.get(ctx.tenant, 0) + 1

    def _reject(self, ctx: TenantContext, kernel: str, reason: str) -> None:
        with self._lock:
            self._rejected[ctx.tenant] = self._rejected.get(ctx.tenant, 0) + 1
        telemetry.count("offload.admission_rejected")
        telemetry.count(f"offload.{reason}")
        telemetry.event(
            "qos.rejected", category="qos",
            tenant=ctx.tenant, kernel=kernel, reason=reason,
            priority=ctx.priority,
        )
        flightrecorder.note(
            "qos.rejected", tenant=ctx.tenant, kernel=kernel, reason=reason,
        )

    def snapshot(self) -> dict[str, Any]:
        """Per-tenant admitted/rejected counters and bucket levels."""
        with self._lock:
            tenants = sorted(set(self._admitted) | set(self._rejected)
                             | set(self._buckets))
            return {
                tenant: {
                    "admitted": self._admitted.get(tenant, 0),
                    "rejected": self._rejected.get(tenant, 0),
                    "tokens": (
                        None if self._buckets.get(tenant) is None
                        else self._buckets[tenant].available  # type: ignore[union-attr]
                    ),
                }
                for tenant in tenants
            }


class _Waiter:
    """One queued acquire, parked until granted, shed or timed out."""

    __slots__ = ("ctx", "granted", "error")

    def __init__(self, ctx: TenantContext) -> None:
        self.ctx = ctx
        self.granted = False
        self.error: OffloadError | None = None


class FairInflightWindow(InflightWindow):
    """Deficit-weighted round-robin admission over per-tenant queues.

    Drop-in replacement for the FIFO :class:`InflightWindow` installed
    through :meth:`~repro.backends.base.Backend.install_window`. While
    capacity is free, acquires are granted immediately; once the window
    fills, each acquire parks in its tenant's queue and slots freed by
    completions are granted by DRR: every round a tenant's deficit grows
    by its weight and each granted slot costs one unit, so long-run
    shares converge to the weight ratios while every nonempty queue is
    visited each round (no starvation).

    Overload (queued acquires exceeding ``config.max_queue_depth``)
    triggers priority-ordered shedding: the newest waiter of the
    lowest-priority queued tenant is failed with
    :class:`~repro.errors.LoadShedError` to make room for a
    higher-class arrival; arrivals at or below the lowest queued class
    are rejected outright.

    Single-threaded backends that pass a ``progress`` callback (the sim
    backends) fall back to the base FIFO path: with one driving thread
    there is nothing to arbitrate.
    """

    def __init__(
        self,
        limit: int = DEFAULT_INFLIGHT_LIMIT,
        config: QoSConfig | None = None,
    ) -> None:
        super().__init__(limit)
        self.config = config if config is not None else QoSConfig()
        #: tenant id -> queued waiters (FIFO within a tenant).
        self._queues: dict[str, deque[_Waiter]] = {}
        #: Round-robin ring of tenants with queued waiters.
        self._ring: list[str] = []
        self._ring_index = 0
        self._deficit: dict[str, float] = {}
        #: Tenant currently spending accumulated deficit, if any.
        self._serving: str | None = None
        self._queued = 0
        self._granted: dict[str, int] = {}
        self._shed: dict[str, int] = {}

    # -- admission ---------------------------------------------------------
    def acquire(
        self,
        *,
        timeout: float | None = None,
        progress: Callable[[], None] | None = None,
        label: str = "",
    ) -> None:
        """Reserve one slot, queueing under the tenant's DRR share.

        ``timeout`` arrives from the backend's admission path already
        clamped to the offload's remaining budget (the ambient
        :func:`~repro.backends.base.window_budget` scope set by
        ``Runtime.sync``), so a retried offload parks here only for
        what is left of its overall deadline — never a fresh one.
        """
        if progress is not None:
            # Single-threaded backend driving its own completions: the
            # caller is the only producer, fairness is vacuous.
            super().acquire(timeout=timeout, progress=progress, label=label)
            return
        ambient = current_tenant()
        if isinstance(ambient, TenantContext):
            ctx = ambient
        else:  # bare tenant id or None: resolve against the config
            ctx = self.config.context_for(ambient)
        with self._lock:
            if self._queued == 0 and \
                    len(self._inflight) + self._reserved < self._limit:
                self._reserved += 1
                self._granted[ctx.tenant] = self._granted.get(ctx.tenant, 0) + 1
                flightrecorder.note("window.grant", tenant=ctx.tenant, queued=0)
                return
            waiter = self._enqueue_locked(ctx)
        with telemetry.span(
            "offload.window_wait", label=label,
            tenant=ctx.tenant, limit=self._limit,
        ):
            self._await_grant(waiter, timeout)
        with self._lock:
            self._granted[ctx.tenant] = self._granted.get(ctx.tenant, 0) + 1
            flightrecorder.note(
                "window.grant", tenant=ctx.tenant, queued=self._queued,
            )

    def _enqueue_locked(self, ctx: TenantContext) -> _Waiter:
        """File a waiter, shedding lowest-priority work under overload."""
        if self._queued >= self.config.max_queue_depth:
            victim = self._lowest_priority_locked()
            if victim is None or ctx.priority <= victim.ctx.priority:
                # The arrival itself is the lowest class: reject it.
                self._record_shed_locked(ctx)
                raise LoadShedError(
                    f"queue full ({self._queued} waiting) — shed tenant "
                    f"{ctx.tenant!r} (class {ctx.priority})"
                )
            self._evict_locked(victim)
        waiter = _Waiter(ctx)
        queue = self._queues.get(ctx.tenant)
        if queue is None:
            queue = self._queues[ctx.tenant] = deque()
        if ctx.tenant not in self._ring:
            self._ring.append(ctx.tenant)
        queue.append(waiter)
        self._queued += 1
        self._depth_gauges_locked(ctx.tenant)
        return waiter

    def _depth_gauges_locked(self, tenant: str) -> None:
        """Mirror queue depths onto ``/metrics`` (transport-depth view).

        ``qos.queued`` is the total backlog the shedder compares against
        ``max_queue_depth``; ``qos.queue_depth.<tenant>`` shows which
        tenant the backlog belongs to. No-ops while telemetry is off.
        """
        telemetry.gauge("qos.queued", self._queued)
        telemetry.gauge(
            f"qos.queue_depth.{tenant}", len(self._queues.get(tenant, ()))
        )

    def _await_grant(self, waiter: _Waiter, timeout: float | None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not waiter.granted and waiter.error is None:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._remove_locked(waiter)
                        raise OffloadTimeoutError(
                            f"in-flight window full ({self._limit} operations "
                            "outstanding) and no slot granted to tenant "
                            f"{waiter.ctx.tenant!r} within the deadline"
                        )
                self._slot_freed.wait(remaining)
            if waiter.error is not None:
                raise waiter.error

    # -- scheduling --------------------------------------------------------
    def _grant_locked(self) -> None:
        """Hand freed capacity to queued waiters in DRR order."""
        while self._queued and \
                len(self._inflight) + self._reserved < self._limit:
            waiter = self._pick_locked()
            if waiter is None:  # pragma: no cover - defensive
                break
            self._reserved += 1
            self._queued -= 1
            self._depth_gauges_locked(waiter.ctx.tenant)
            waiter.granted = True
        # Wake everything: granted waiters return, FIFO-fallback waiters
        # (base-class acquire on the progress path) re-check capacity.
        self._slot_freed.notify_all()

    def _pick_locked(self) -> _Waiter | None:
        """Deficit round robin: quantum = weight, one unit per grant."""
        while True:
            if self._serving is not None:
                tenant = self._serving
                queue = self._queues.get(tenant)
                if queue and self._deficit.get(tenant, 0.0) >= 1.0:
                    self._deficit[tenant] -= 1.0
                    waiter = queue.popleft()
                    if not queue:
                        # DRR resets the deficit of an emptied queue so
                        # idle tenants cannot bank credit.
                        self._deficit[tenant] = 0.0
                        self._retire_locked(tenant)
                    return waiter
                self._serving = None
            tenant = self._next_ring_locked()
            if tenant is None:
                return None
            weight = self._weight_of_locked(tenant)
            self._deficit[tenant] = self._deficit.get(tenant, 0.0) + weight
            if self._deficit[tenant] >= 1.0:
                self._serving = tenant

    def _next_ring_locked(self) -> str | None:
        """Advance the round-robin ring to the next tenant with waiters."""
        while self._ring:
            if self._ring_index >= len(self._ring):
                self._ring_index = 0
            tenant = self._ring[self._ring_index]
            if self._queues.get(tenant):
                self._ring_index += 1
                return tenant
            self._retire_locked(tenant)
        return None

    def _weight_of_locked(self, tenant: str) -> float:
        queue = self._queues.get(tenant)
        if queue:
            return queue[0].ctx.weight
        return self.config.policy_for(tenant).weight

    def _retire_locked(self, tenant: str) -> None:
        """Drop an emptied tenant from the ring (keeps the index stable)."""
        try:
            idx = self._ring.index(tenant)
        except ValueError:
            return
        del self._ring[idx]
        if idx < self._ring_index:
            self._ring_index -= 1
        if self._serving == tenant:
            self._serving = None
        self._queues.pop(tenant, None)

    # -- shedding ----------------------------------------------------------
    def _lowest_priority_locked(self) -> _Waiter | None:
        """The newest waiter of the lowest-priority queued class."""
        victim: _Waiter | None = None
        for queue in self._queues.values():
            if not queue:
                continue
            candidate = queue[-1]
            if victim is None or candidate.ctx.priority < victim.ctx.priority:
                victim = candidate
        return victim

    def _evict_locked(self, victim: _Waiter) -> None:
        queue = self._queues.get(victim.ctx.tenant)
        if queue is not None:
            try:
                queue.remove(victim)
            except ValueError:  # pragma: no cover - defensive
                return
            self._queued -= 1
            self._depth_gauges_locked(victim.ctx.tenant)
            if not queue:
                self._retire_locked(victim.ctx.tenant)
        victim.error = LoadShedError(
            f"shed while queued: tenant {victim.ctx.tenant!r} "
            f"(class {victim.ctx.priority}) displaced by higher-class work"
        )
        self._record_shed_locked(victim.ctx)
        self._slot_freed.notify_all()

    def _record_shed_locked(self, ctx: TenantContext) -> None:
        self._shed[ctx.tenant] = self._shed.get(ctx.tenant, 0) + 1
        telemetry.count("offload.shed")
        telemetry.event(
            "offload.shed", category="qos",
            tenant=ctx.tenant, priority=ctx.priority, queued=self._queued,
        )
        flightrecorder.note(
            "offload.shed", tenant=ctx.tenant, priority=ctx.priority,
            queued=self._queued,
        )

    def _remove_locked(self, waiter: _Waiter) -> None:
        queue = self._queues.get(waiter.ctx.tenant)
        if queue is not None:
            try:
                queue.remove(waiter)
                self._queued -= 1
                self._depth_gauges_locked(waiter.ctx.tenant)
            except ValueError:
                pass
            if not queue:
                self._retire_locked(waiter.ctx.tenant)

    # -- base-class hooks --------------------------------------------------
    def register(self, handle: Any) -> None:
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1
            self._inflight[handle.correlation_id] = handle

    def cancel(self) -> None:
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1
            self._grant_locked()

    def release(self, handle: Any) -> None:
        with self._lock:
            if self._inflight.pop(handle.correlation_id, None) is not None:
                self._grant_locked()

    def set_limit(self, limit: int) -> None:
        super().set_limit(limit)
        with self._lock:
            self._grant_locked()

    # -- introspection -----------------------------------------------------
    @property
    def queued(self) -> int:
        """Acquires currently parked in tenant queues."""
        with self._lock:
            return self._queued

    def snapshot(self) -> dict[str, Any]:
        """Per-tenant granted/shed/queued counters for ``stats()``."""
        with self._lock:
            tenants = sorted(
                set(self._granted) | set(self._shed) | set(self._queues)
            )
            return {
                "limit": self._limit,
                "queued": self._queued,
                "tenants": {
                    tenant: {
                        "granted": self._granted.get(tenant, 0),
                        "shed": self._shed.get(tenant, 0),
                        "queued": len(self._queues.get(tenant, ())),
                    }
                    for tenant in tenants
                },
            }
