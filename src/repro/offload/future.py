"""Futures (paper Table II: ``future<T>``).

"Lazy synchronization to an asynchronous offload operation ... provides
non-blocking ``test()`` and blocking ``get()`` accessors." A future wraps
a backend-specific handle; calling :meth:`get` repeatedly returns the
cached value.

Beyond the paper, :meth:`Future.get` accepts a ``timeout`` (seconds):
instead of blocking forever on a silent target it raises
:class:`~repro.errors.OffloadTimeoutError`. A timed-out future stays
*pending* — the reply may still arrive, and a later ``get`` (with a new
deadline or without one) can pick it up.

Futures are also awaitable: ``await future`` inside an asyncio
coroutine suspends the task (not the thread) until the reply lands.
The bridge is callback-driven when the backend supports it — the
reactor thread completes the handle, the attached done-callback pokes
the event loop via ``call_soon_threadsafe`` — and falls back to a
short exponential poll for handles without completion callbacks.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Generator, Protocol

from repro.errors import FutureError, OffloadTimeoutError
from repro.telemetry import context as trace_context
from repro.telemetry import recorder as telemetry
from repro.telemetry.context import TraceContext
from repro.telemetry.sampling import complete_offload

__all__ = ["Future", "OperationHandle", "CompletedHandle"]


class OperationHandle(Protocol):
    """What backends hand to futures: a pollable pending operation."""

    def test(self) -> bool:
        """Non-blocking completion probe."""
        ...

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; return the value (raising on failure).

        With ``timeout`` set, raise :class:`OffloadTimeoutError` instead
        of blocking past the deadline.
        """
        ...


class CompletedHandle:
    """A trivially complete handle (synchronous backends)."""

    def __init__(self, value: Any = None, error: BaseException | None = None) -> None:
        self._value = value
        self._error = error

    def test(self) -> bool:
        return True

    def wait(self, timeout: float | None = None) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


class Future:
    """Handle to an asynchronous offload operation's result."""

    def __init__(
        self,
        handle: OperationHandle,
        label: str = "",
        trace: TraceContext | None = None,
        start_ns: int | None = None,
        tenant: str | None = None,
        node: int | None = None,
    ) -> None:
        self._handle: OperationHandle | None = handle
        self._label = label
        #: Target node the invocation was posted to; lets the settle
        #: attribute the round trip per target (TSDB scoreboard series).
        self._node = node
        #: Tenant this offload is accounted to (QoS layer); rides along
        #: so the settle feeds the tenant's own SLO windows.
        self._tenant = tenant
        #: Distributed trace opened at offload() time; re-activated
        #: around the settle so the wait/decode spans join the same
        #: causal tree even when get() runs far from async_().
        self._trace = trace
        #: perf_counter_ns at issue time; when set, settling feeds the
        #: round-trip duration to the continuous profiler / SLO monitor
        #: / tail pipeline via complete_offload. None for trivially
        #: complete handles (put/get/copy parity futures).
        self._start_ns = start_ns
        self._done = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._timeout_observed = False

    @property
    def correlation_id(self) -> int | None:
        """Correlation id of the underlying invocation.

        The id frames carry on the wire and backends match replies by;
        useful to correlate application futures with telemetry and
        transport logs. ``None`` once the future has settled (the handle
        is released) or for trivially complete handles.
        """
        return getattr(self._handle, "correlation_id", None)

    def test(self) -> bool:
        """Whether the result is available (non-blocking)."""
        if self._done:
            return True
        assert self._handle is not None
        if self._handle.test():
            self._settle()
            return True
        return False

    def get(self, timeout: float | None = None) -> Any:
        """Block until the result is available and return it.

        Re-raises the remote exception if the offloaded function failed.
        With ``timeout`` set, raises
        :class:`~repro.errors.OffloadTimeoutError` once the deadline
        passes; the future remains pending and may be retried.
        """
        if not self._done:
            self._settle(timeout)
        if self._error is not None:
            raise self._error
        return self._value

    def __await__(self) -> Generator[Any, None, Any]:
        """Suspend the current asyncio task until the result is ready.

        The blocking semantics of :meth:`get` are preserved — the same
        settle path runs, remote exceptions re-raise, the value is
        cached — but the wait parks only the task: the event loop keeps
        running other coroutines while the reply is in flight, so one
        loop can hold thousands of offloads open concurrently.

        Completion-capable handles (every transport backend) wake the
        loop exactly once via a done-callback; handles without
        ``add_done_callback`` are polled with an exponential backoff
        capped at 5 ms. Cancelling the awaiting task leaves the future
        *pending*, exactly like a timed-out ``get`` — a later ``get``
        or ``await`` can still collect the reply.
        """
        if not self._done and not self.test():
            loop = asyncio.get_running_loop()
            attach = getattr(self._handle, "add_done_callback", None)
            if attach is not None:
                woken = loop.create_future()

                def _wake() -> None:
                    if not woken.done():
                        woken.set_result(None)

                def _on_done(_handle: Any) -> None:
                    # Runs on the completing thread (reactor / driver);
                    # a closed loop means the application is tearing
                    # down and nobody is left to wake.
                    if not loop.is_closed():
                        loop.call_soon_threadsafe(_wake)

                attach(_on_done)
                yield from woken.__await__()
            else:
                delay = 50e-6
                while not self.test():
                    yield from asyncio.sleep(delay).__await__()
                    delay = min(delay * 2, 5e-3)
        # The handle is complete: get() settles without blocking and
        # re-raises a remote failure, identical to the sync surface.
        return self.get()

    def _settle(self, timeout: float | None = None) -> None:
        if self._handle is None:
            raise FutureError(f"future {self._label!r} detached from its backend")
        try:
            with trace_context.activate(self._trace):
                self._value = self._handle.wait(timeout=timeout)
        except OffloadTimeoutError:
            # Deadline expired but the operation may still be in flight:
            # stay pending so a later get() can collect the reply (a
            # poisoned handle simply re-raises immediately next time).
            # The caller-visible deadline miss still counts against the
            # availability SLO — once per future, even if the straggler
            # reply eventually lands — otherwise dropped messages (the
            # most common chaos fault) would be invisible to burn-rate
            # alerting.
            telemetry.count("future.timeouts")
            if self._start_ns is not None and not self._timeout_observed:
                self._timeout_observed = True
                recorder = telemetry.get()
                if recorder is not None and recorder.slo is not None:
                    recorder.slo.observe(
                        "offload",
                        time.perf_counter_ns() - self._start_ns,
                        error=True,
                        tenant=self._tenant,
                    )
            raise
        except BaseException as exc:  # noqa: BLE001 - stored for re-raise
            self._error = exc
        self._done = True
        self._handle = None
        telemetry.count("future.settled")
        if self._start_ns is not None:
            # The one completion hook per offload: folds the round trip
            # into per-kernel profiles and SLO windows, and lets the
            # tail pipeline pass its keep/drop verdict on an unsampled
            # trace's staged spans.
            complete_offload(
                self._trace,
                kernel=self._label,
                duration_ns=time.perf_counter_ns() - self._start_ns,
                error=self._error is not None,
                tenant=self._tenant,
                node=self._node,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Future {self._label!r} {state}>"
