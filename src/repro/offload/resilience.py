"""Resilience layer for the offload runtime: deadlines, retries, health.

The paper's DMA protocol deliberately trades the safety of the
VEOS-mediated path for raw speed (Sec. IV-B) and leaves crash handling
to "the framework above". This module is that framework: a declarative
:class:`ResiliencePolicy` (per-operation deadline, bounded retries with
seeded exponential backoff) and a per-node :class:`HealthMonitor`
driving a ``healthy -> degraded -> down`` state machine off ``OP_PING``
heartbeats and observed transport failures, with a circuit breaker that
fails fast on down nodes instead of burning a full deadline each time.

What is retried and what is not
-------------------------------

Only *transport* failures (:class:`~repro.errors.BackendError`,
:class:`~repro.errors.OffloadTimeoutError`) are retry candidates, and
only when the caller declared the operation idempotent — the runtime
cannot know whether a functor that timed out also executed.
:class:`~repro.errors.RemoteExecutionError` means the target ran the
functor and the *application* raised; that is a success of the transport
and is never retried.

Everything here is deterministic under a fixed seed and an injected
clock, so fault-injection tests replay exactly.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import CircuitOpenError, OffloadError
from repro.telemetry import flightrecorder
from repro.telemetry import recorder as telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import Backend
    from repro.offload.hedging import HedgePolicy
    from repro.offload.node import NodeId

__all__ = ["NodeHealth", "ResiliencePolicy", "HealthMonitor"]

#: Gauge encoding of :class:`NodeHealth` for ``/metrics``
#: (``health.node_state.<node>``): 0 healthy, 1 degraded, 2 down.
_HEALTH_GAUGE = {"healthy": 0, "degraded": 1, "down": 2}


class NodeHealth(enum.Enum):
    """Observed health of one offload target."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs governing deadlines, retries and health thresholds.

    Parameters
    ----------
    deadline:
        Per-operation deadline in seconds (wall clock on functional
        backends, simulated seconds on the sim backends). ``None``
        disables deadlines — operations may block indefinitely, as in
        the paper's raw protocol.
    max_retries:
        Additional attempts after the first failure of an operation the
        caller declared idempotent. ``0`` disables retries.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff: attempt ``k`` sleeps
        ``min(backoff_max, backoff_base * backoff_factor**k)`` seconds,
        scaled by jitter.
    jitter:
        Fractional jitter: each delay is multiplied by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]`` using the seeded RNG,
        de-synchronising retry storms while staying reproducible.
    seed:
        Seed of the RNG used for jitter (and nothing else).
    failover:
        Whether idempotent operations may be re-posted to a healthy peer
        node after the original target fails (multi-target backends).
    degraded_after / down_after:
        Consecutive transport failures after which a node is marked
        DEGRADED resp. DOWN. Any success resets the node to HEALTHY.
    probe_interval:
        Seconds a DOWN node's circuit stays open before one half-open
        probe operation is allowed through to test recovery.
    hedge:
        Optional :class:`~repro.offload.hedging.HedgePolicy`. When set,
        ``sync(..., idempotent=True)`` of a location-free functor on a
        multi-target backend duplicates a straggling attempt to a second
        healthy target once it outwaits the kernel's rolling tail
        latency — the latency-tolerance twin of the retry path, which
        only reacts to outright failure. ``None`` disables hedging.
    """

    deadline: float | None = None
    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    failover: bool = True
    degraded_after: int = 1
    down_after: int = 3
    probe_interval: float = 1.0
    hedge: "HedgePolicy | None" = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise OffloadError(f"deadline must be positive, got {self.deadline}")
        if self.max_retries < 0:
            raise OffloadError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0 <= self.jitter <= 1:
            raise OffloadError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.degraded_after < 1 or self.down_after < self.degraded_after:
            raise OffloadError(
                "need 1 <= degraded_after <= down_after, got "
                f"{self.degraded_after}/{self.down_after}"
            )

    def rng(self) -> random.Random:
        """A fresh RNG seeded with :attr:`seed` (jitter determinism)."""
        return random.Random(self.seed)

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before retry ``attempt`` (0-based), with jitter."""
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base

    def delays(self, rng: random.Random | None = None) -> Iterable[float]:
        """The full retry-delay schedule (``max_retries`` entries)."""
        rng = rng or self.rng()
        return [self.delay_for(k, rng) for k in range(self.max_retries)]


@dataclass
class _NodeRecord:
    health: NodeHealth = NodeHealth.HEALTHY
    consecutive_failures: int = 0
    successes: int = 0
    failures: int = 0
    last_failure_at: float | None = None
    last_probe_at: float | None = None
    last_ping_latency: float | None = None


class HealthMonitor:
    """Per-node health state machine plus circuit breaker.

    Fed from two sources: observed outcomes of regular offload traffic
    (:meth:`record_success` / :meth:`record_failure`) and explicit
    ``OP_PING`` heartbeats (:meth:`heartbeat`). State transitions:

    * ``HEALTHY -> DEGRADED`` after ``policy.degraded_after`` consecutive
      transport failures;
    * ``DEGRADED -> DOWN`` after ``policy.down_after``;
    * any success returns the node straight to ``HEALTHY``.

    The circuit breaker (:meth:`allow`) admits all traffic to HEALTHY and
    DEGRADED nodes; a DOWN node's circuit is open and :meth:`allow`
    returns ``False``, except for one half-open probe every
    ``policy.probe_interval`` seconds.

    The clock is injectable so tests replay deterministically.
    """

    def __init__(
        self,
        policy: ResiliencePolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else ResiliencePolicy()
        self._clock = clock
        self._nodes: dict[NodeId, _NodeRecord] = {}

    def _record(self, node: NodeId) -> _NodeRecord:
        record = self._nodes.get(node)
        if record is None:
            record = self._nodes[node] = _NodeRecord()
        return record

    # -- observations ---------------------------------------------------------
    def record_success(self, node: NodeId, latency: float | None = None) -> None:
        """A transport-level success (including remote application errors)."""
        record = self._record(node)
        record.successes += 1
        record.consecutive_failures = 0
        previous = record.health
        record.health = NodeHealth.HEALTHY
        if previous is not NodeHealth.HEALTHY:
            self._transition(node, previous, NodeHealth.HEALTHY)
        if latency is not None:
            record.last_ping_latency = latency
        self._export_gauges(node, record)

    def record_failure(self, node: NodeId) -> NodeHealth:
        """A transport-level failure; returns the node's new health."""
        record = self._record(node)
        record.failures += 1
        record.consecutive_failures += 1
        record.last_failure_at = self._clock()
        previous = record.health
        if record.consecutive_failures >= self.policy.down_after:
            record.health = NodeHealth.DOWN
        elif record.consecutive_failures >= self.policy.degraded_after:
            record.health = NodeHealth.DEGRADED
        if record.health is not previous:
            self._transition(node, previous, record.health)
        self._export_gauges(node, record)
        return record.health

    def _export_gauges(self, node: NodeId, record: _NodeRecord) -> None:
        """Mirror one node's failover state onto ``/metrics``.

        ``health.node_state.<node>`` (0 healthy / 1 degraded / 2 down)
        and ``health.consecutive_failures.<node>`` render through the
        Prometheus exporter as ``repro_health_node_state_<node>`` etc.,
        so a scrape shows circuit state without parsing the event log.
        """
        telemetry.gauge(
            f"health.node_state.{node}", _HEALTH_GAUGE[record.health.value]
        )
        telemetry.gauge(
            f"health.consecutive_failures.{node}", record.consecutive_failures
        )

    def _transition(
        self, node: NodeId, previous: NodeHealth, new: NodeHealth
    ) -> None:
        """Publish one health state change to the telemetry stream."""
        telemetry.event(
            "health.transition", category="health",
            node=node, previous=previous.value, new=new.value,
        )
        telemetry.count("health.transitions")
        flightrecorder.note(
            "health.transition", node=node,
            previous=previous.value, new=new.value,
        )
        if new is NodeHealth.DOWN:
            telemetry.count("health.circuit_opened")
            # A node going DOWN is the host-side face of peer death:
            # capture the evidence while the in-flight table still
            # shows what was stranded on it.
            flightrecorder.trigger("node_down", node=node)

    # -- queries --------------------------------------------------------------
    def health(self, node: NodeId) -> NodeHealth:
        """Current health of ``node`` (unknown nodes are HEALTHY)."""
        record = self._nodes.get(node)
        return record.health if record is not None else NodeHealth.HEALTHY

    def allow(self, node: NodeId) -> bool:
        """Circuit breaker: may traffic be sent to ``node`` right now?

        DOWN nodes are fenced; every ``policy.probe_interval`` seconds a
        single half-open probe is admitted (and stamps the probe clock,
        so concurrent callers do not all pile onto a dead node).
        """
        record = self._nodes.get(node)
        if record is None or record.health is not NodeHealth.DOWN:
            return True
        now = self._clock()
        anchor = record.last_probe_at
        if anchor is None:
            anchor = record.last_failure_at if record.last_failure_at is not None else now
        if now - anchor >= self.policy.probe_interval:
            record.last_probe_at = now
            telemetry.event("health.probe", category="health", node=node)
            return True
        return False

    def check(self, node: NodeId) -> None:
        """Raise :class:`CircuitOpenError` unless :meth:`allow` passes."""
        if not self.allow(node):
            telemetry.count("health.circuit_rejections")
            raise CircuitOpenError(
                f"node {node} is down (circuit open; next probe in "
                f"<= {self.policy.probe_interval:g} s)"
            )

    def preferred(
        self, candidates: Sequence[NodeId], exclude: Iterable[NodeId] = ()
    ) -> list[NodeId]:
        """Failover candidates, healthiest first, fenced nodes last.

        HEALTHY nodes in input order, then DEGRADED, then DOWN nodes
        whose circuit currently admits a probe. Nodes in ``exclude``
        (typically targets already tried) are omitted entirely.
        """
        excluded = set(exclude)
        ranked: dict[NodeHealth, list[NodeId]] = {h: [] for h in NodeHealth}
        for node in candidates:
            if node in excluded:
                continue
            ranked[self.health(node)].append(node)
        ordered = ranked[NodeHealth.HEALTHY] + ranked[NodeHealth.DEGRADED]
        ordered += [n for n in ranked[NodeHealth.DOWN] if self.allow(n)]
        return ordered

    # -- heartbeats -----------------------------------------------------------
    def heartbeat(
        self, backend: "Backend", nodes: Iterable[NodeId] | None = None
    ) -> dict[NodeId, float | None]:
        """Ping targets via the backend; record outcomes; return latencies.

        ``None`` latency marks a failed ping. ``nodes`` defaults to every
        target of the backend.
        """
        if nodes is None:
            nodes = range(1, backend.num_nodes())
        results: dict[NodeId, float | None] = {}
        for node in nodes:
            try:
                latency = backend.ping(node)
            except OffloadError:
                self.record_failure(node)
                results[node] = None
            else:
                self.record_success(node, latency=latency)
                results[node] = latency
        return results

    # -- introspection --------------------------------------------------------
    def snapshot(self) -> dict[NodeId, dict]:
        """Per-node counters and state, for ``Runtime.stats()``."""
        return {
            node: {
                "health": record.health.value,
                "consecutive_failures": record.consecutive_failures,
                "failures": record.failures,
                "successes": record.successes,
                "last_ping_latency": record.last_ping_latency,
            }
            for node, record in self._nodes.items()
        }
