"""The HAM-Offload runtime: public API bound to one backend.

One :class:`Runtime` instance per application role. The host-side runtime
exposes the paper's Table II API; the target-side message loop lives in
the backends (an in-process image, a TCP server process, or a simulated
VE process).

Beyond the paper, the runtime optionally carries a
:class:`~repro.offload.resilience.ResiliencePolicy`: per-operation
deadlines are pushed into the backend, transport failures feed a
per-node :class:`~repro.offload.resilience.HealthMonitor` whose circuit
breaker fails fast on dead nodes, and operations the caller declares
idempotent are retried with seeded exponential backoff — failing over to
a healthy peer target where the backend has one.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.errors import (
    AdmissionRejectedError,
    BackendError,
    CircuitOpenError,
    OffloadError,
    OffloadTimeoutError,
    RemoteExecutionError,
)
from repro.backends.base import window_budget
from repro.ham.functor import Functor
from repro.offload.buffer import BufferPtr
from repro.offload.future import CompletedHandle, Future
from repro.offload.hedging import Hedger, is_location_free
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.offload.qos import (
    AdmissionController,
    FairInflightWindow,
    QoSConfig,
    TenantContext,
    current_tenant,
    tenant_scope,
)
from repro.offload.resilience import HealthMonitor, ResiliencePolicy
from repro.telemetry import context as trace_context
from repro.telemetry import flightrecorder
from repro.telemetry import recorder as telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import Backend

__all__ = ["Runtime"]

#: Transport-level failures: retry candidates for idempotent operations.
_TRANSPORT_ERRORS = (BackendError, OffloadTimeoutError)


class Runtime:
    """Host-side HAM-Offload runtime (paper Table II operations).

    Parameters
    ----------
    backend:
        The communication backend connecting this process to its targets.
    policy:
        Optional :class:`ResiliencePolicy`. When set, the policy deadline
        becomes the backend's default operation timeout, a
        :class:`HealthMonitor` tracks per-node health, and
        :meth:`sync` honors ``idempotent=True`` with bounded retries and
        failover. Without a policy the runtime behaves exactly like the
        paper's: raw speed, no protection.
    monitor:
        Optional externally-owned health monitor (e.g. shared between
        runtimes); defaults to a fresh one when a policy is given.
    window:
        Optional bound on invocations in flight (the backend's
        :class:`~repro.backends.base.InflightWindow` limit). ``None``
        keeps the backend's default
        (:data:`~repro.backends.base.DEFAULT_INFLIGHT_LIMIT`).
    qos:
        Optional :class:`~repro.offload.qos.QoSConfig`. When set, the
        backend's FIFO window is replaced by a
        :class:`~repro.offload.qos.FairInflightWindow` (deficit-weighted
        round robin across tenants, priority-ordered load shedding) and
        every offload passes an
        :class:`~repro.offload.qos.AdmissionController` *before*
        serialization — per-tenant rate limits and deadline-feasibility
        checks fail in microseconds instead of burning a window slot.
        Offloads pick up their :class:`~repro.offload.qos.TenantContext`
        from the ``tenant=`` argument, the ambient
        :func:`~repro.offload.qos.tenant_scope`, or the config's default
        tenant, in that order.
    """

    def __init__(
        self,
        backend: "Backend",
        policy: ResiliencePolicy | None = None,
        monitor: HealthMonitor | None = None,
        *,
        window: int | None = None,
        qos: QoSConfig | None = None,
    ) -> None:
        self.backend = backend
        self.policy = policy
        self.qos = qos
        if monitor is not None:
            self.monitor = monitor
        else:
            self.monitor = HealthMonitor(policy) if policy is not None else None
        self.admission: AdmissionController | None = None
        self._fair_window: FairInflightWindow | None = None
        if qos is not None:
            limit = window if window is not None else qos.window
            self._fair_window = FairInflightWindow(
                limit if limit is not None else backend.window.limit, qos
            )
            backend.install_window(self._fair_window)
            self.admission = AdmissionController(qos)
        elif window is not None:
            backend.set_inflight_limit(window)
        self._hedger = (
            Hedger(policy.hedge)
            if policy is not None and policy.hedge is not None
            else None
        )
        if policy is not None and policy.deadline is not None:
            backend.set_default_timeout(policy.deadline)
            # A full window against a dead target must fail fast too:
            # the policy deadline bounds the wait for a free slot.
            backend.set_window_timeout(policy.deadline)
        self._retry_rng = policy.rng() if policy is not None else None
        self._sleep: Callable[[float], None] = time.sleep
        #: (node, addr) -> (pointer, telemetry span id of the allocation
        #: site, 0 when telemetry was off) — the span id lets the leak
        #: warning at shutdown point back into the trace.
        self._live_buffers: dict[tuple[NodeId, int], tuple[BufferPtr, int]] = {}
        self._shutdown = False
        self._offloads_posted = 0
        self._retries = 0
        self._failovers = 0
        self._puts = 0
        self._gets = 0
        self._copies = 0
        # The black-box flight recorder includes this runtime's in-flight
        # table in crash bundles until a clean shutdown detaches it.
        flightrecorder.attach_runtime(self)

    # -- topology ------------------------------------------------------------
    def num_nodes(self) -> int:
        """Number of processes of the running application."""
        return self.backend.num_nodes()

    def this_node(self) -> NodeId:
        """Address of the current process (the host)."""
        return HOST_NODE

    def get_node_descriptor(self, node: NodeId) -> NodeDescriptor:
        """Descriptor of ``node``."""
        return self.backend.descriptor(node)

    def targets(self) -> list[NodeId]:
        """All offload-target node addresses."""
        return list(range(1, self.num_nodes()))

    # -- offloading --------------------------------------------------------------
    def _offload_trace(self) -> "trace_context.TraceContext | None":
        """The distributed trace for one offload.

        While telemetry records, every offload runs inside a trace
        context: the caller's active one if there is one (so an
        application can group several offloads under one trace), else a
        fresh root generated here — "generated at offload()". When a
        head sampler is installed (``telemetry={"sample_rate": p}``),
        the fresh root carries its verdict; without one every trace is
        sampled, the pre-sampling behavior. With telemetry off, no
        context exists and the path stays free.
        """
        recorder = telemetry.get()
        if recorder is None:
            return None
        ctx = trace_context.current()
        if ctx is not None:
            return ctx
        sampler = recorder.sampler
        if sampler is not None:
            return sampler.new_trace()
        return trace_context.new_trace()

    def _resolve_tenant(
        self, tenant: "str | TenantContext | None"
    ) -> TenantContext | None:
        """Pick the offload's tenant: explicit, ambient, or QoS default."""
        if tenant is None:
            # The ambient scope may hold a bare tenant id too; it is
            # normalized below, so it picks up the QoS policy exactly
            # like an explicit tenant= argument.
            tenant = current_tenant()
        if tenant is not None:
            if isinstance(tenant, TenantContext):
                return tenant
            if self.qos is not None:
                return self.qos.context_for(tenant)
            return TenantContext(tenant=tenant)
        if self.qos is not None:
            return self.qos.context_for(None)
        return None

    def async_(
        self,
        node: NodeId,
        functor: Functor,
        *,
        tenant: "str | TenantContext | None" = None,
    ) -> Future:
        """Asynchronous offload of ``functor`` to ``node`` (paper ``async``)."""
        self._check_running()
        self.backend.check_target(node)
        if not isinstance(functor, Functor):
            raise OffloadError(
                "async_/sync expect a Functor; build one with f2f(fn, args...)"
            )
        if self.monitor is not None:
            self.monitor.check(node)
        tctx = self._resolve_tenant(tenant)
        if self.admission is not None and tctx is not None:
            # Before serialization by design: a rejected offload never
            # builds its frame, never touches the window.
            try:
                self.admission.admit(tctx, functor.type_name)
            except AdmissionRejectedError:
                recorder = telemetry.get()
                if recorder is not None and recorder.slo is not None:
                    # A rejection is an availability miss charged to the
                    # tenant that caused it (instant, hence duration 0).
                    recorder.slo.observe(
                        "offload", 0, error=True, tenant=tctx.tenant
                    )
                raise
        ctx = self._offload_trace()
        start_ns = time.perf_counter_ns()
        try:
            with trace_context.activate(ctx), tenant_scope(tctx):
                handle = self.backend.post_invoke(node, functor)
        except _TRANSPORT_ERRORS as exc:
            if self.monitor is not None:
                self.monitor.record_failure(node)
            telemetry.count("offload.issue_failures")
            flightrecorder.note(
                "offload.post_failed", node=node,
                functor=functor.type_name, error=type(exc).__name__,
            )
            # An offload that never left the host is still a failed
            # offload to its caller: count it against the availability
            # SLO (no future will ever settle to do it).
            recorder = telemetry.get()
            if recorder is not None and recorder.slo is not None:
                recorder.slo.observe(
                    "offload", time.perf_counter_ns() - start_ns, error=True,
                    tenant=tctx.tenant if tctx is not None else None,
                )
            raise
        self._offloads_posted += 1
        telemetry.count("offload.issued")
        return Future(handle, label=functor.type_name, trace=ctx,
                      start_ns=start_ns,
                      tenant=tctx.tenant if tctx is not None else None,
                      node=node)

    def sync(
        self,
        node: NodeId,
        functor: Functor,
        *,
        idempotent: bool = False,
        timeout: float | None = None,
        tenant: "str | TenantContext | None" = None,
    ) -> Any:
        """Synchronous offload: ``async_`` + ``get``.

        Parameters
        ----------
        idempotent:
            Caller's assertion that executing the functor more than once
            (and on a different target, if the policy allows failover) is
            safe. Only then are transport failures retried under the
            runtime's :class:`ResiliencePolicy` — the runtime cannot know
            whether a timed-out offload also executed — and only then may
            a straggling attempt be *hedged* to a second target when the
            policy carries a :class:`~repro.offload.hedging.HedgePolicy`.
            Functors closing over node-local :class:`BufferPtr` arguments
            are *not* location-independent and are never failed over or
            hedged.
        timeout:
            Per-call deadline override (seconds); defaults to the
            tenant's deadline (under QoS), then the policy deadline.
        tenant:
            Tenant id or full :class:`~repro.offload.qos.TenantContext`
            this offload is accounted to; defaults to the ambient
            :func:`~repro.offload.qos.tenant_scope`, then the QoS
            config's default tenant.
        """
        tctx = self._resolve_tenant(tenant)
        if timeout is None and tctx is not None and tctx.deadline is not None:
            timeout = tctx.deadline
        with tenant_scope(tctx):
            if self.policy is None:
                return self.async_(node, functor).get(timeout=timeout)
            policy = self.policy
            deadline = timeout if timeout is not None else policy.deadline
            attempts = (1 + policy.max_retries) if idempotent else 1
            tried: list[NodeId] = []
            last_error: Exception | None = None
            # One trace spans the whole resilient operation: every retry
            # and failover re-posts under the same trace_id, so the
            # merged trace shows attempt N's spans (and the resilience.*
            # events between them) re-parented onto the one logical
            # offload.
            with trace_context.activate(self._offload_trace()):
                return self._sync_attempts(
                    functor, deadline, attempts, node, tried, last_error,
                    idempotent=idempotent,
                )

    def _sync_attempts(
        self,
        functor: Functor,
        deadline: float | None,
        attempts: int,
        target: NodeId,
        tried: list[NodeId],
        last_error: Exception | None,
        *,
        idempotent: bool = False,
    ) -> Any:
        """The retry/failover loop of :meth:`sync` (trace already active).

        ``deadline`` is the budget for the *whole* resilient operation,
        not per attempt: the absolute expiry is computed once, every
        retry gets only the time still remaining, and the window-slot
        wait inside the backend is bounded by the same budget (via
        :func:`~repro.backends.base.window_budget`). Previously each
        retry re-armed the full deadline — three retries against a full
        window could stall a 1 s policy for 4 s.
        """
        policy = self.policy
        node = target
        expiry = None if deadline is None else time.monotonic() + deadline
        with window_budget(expiry):
            return self._attempt_loop(
                functor, expiry, attempts, target, tried, last_error,
                node=node, idempotent=idempotent,
            )

    def _attempt_loop(
        self,
        functor: Functor,
        expiry: float | None,
        attempts: int,
        target: NodeId,
        tried: list[NodeId],
        last_error: Exception | None,
        *,
        node: NodeId,
        idempotent: bool,
    ) -> Any:
        policy = self.policy
        for attempt in range(attempts):
            if attempt:
                self._sleep(policy.delay_for(attempt - 1, self._retry_rng))
                if expiry is not None and time.monotonic() >= expiry:
                    # The backoff sleep spent the rest of the budget: a
                    # further attempt would be posted with no time left
                    # to wait for its reply.
                    last_error = OffloadTimeoutError(
                        f"operation budget exhausted after {attempt} "
                        f"attempt(s) of {functor.type_name!r}"
                    )
                    break
                self._retries += 1
                telemetry.count("offload.retries")
                telemetry.event(
                    "resilience.retry", category="resilience",
                    functor=functor.type_name, attempt=attempt, node=target,
                )
                flightrecorder.note(
                    "resilience.retry", functor=functor.type_name,
                    attempt=attempt, node=target,
                )
                if policy.failover:
                    successor = self._failover_target(target, tried)
                    if successor is None:
                        break
                    if successor != node:
                        self._failovers += 1
                        telemetry.count("offload.failovers")
                        telemetry.event(
                            "resilience.failover", category="resilience",
                            functor=functor.type_name,
                            from_node=target, to_node=successor,
                        )
                    target = successor
            try:
                future = self.async_(target, functor)
            except (CircuitOpenError, *_TRANSPORT_ERRORS) as exc:
                # async_ already recorded transport failures.
                tried.append(target)
                last_error = exc
                continue
            # Posting may itself have waited (window full): the reply
            # wait gets what is left of the budget, not a fresh deadline.
            remaining = None if expiry is None else expiry - time.monotonic()
            try:
                if (
                    self._hedger is not None
                    and idempotent
                    and self.monitor is not None
                    and self.num_nodes() > 2
                    and is_location_free(functor)
                ):
                    # The hedge duplicates the wait, not the failure
                    # handling: transport errors out of await_hedged land
                    # in the same except arms as a plain get.
                    value = self._hedger.await_hedged(
                        self, future, functor, target, remaining
                    )
                else:
                    value = future.get(timeout=remaining)
            except RemoteExecutionError:
                # The target executed the functor and the *application*
                # raised: the transport is healthy, and retrying a
                # deterministic failure would just repeat it.
                if self.monitor is not None:
                    self.monitor.record_success(target)
                raise
            except _TRANSPORT_ERRORS as exc:
                if self.monitor is not None:
                    self.monitor.record_failure(target)
                tried.append(target)
                last_error = exc
                continue
            if self.monitor is not None:
                self.monitor.record_success(target)
            return value
        assert last_error is not None
        # Every retry and failover is spent: this error reaches the
        # caller, which is exactly the moment a post-mortem bundle pays.
        flightrecorder.trigger(
            "offload_error", functor=functor.type_name,
            error=type(last_error).__name__, attempts=len(tried),
        )
        raise last_error

    def _failover_target(self, current: NodeId, tried: list[NodeId]) -> NodeId | None:
        """Pick the next attempt's target: untried healthy peers first.

        Falls back to re-trying already-tried nodes (healthiest first)
        once everything has been attempted; returns ``None`` when every
        target's circuit is open.
        """
        assert self.monitor is not None
        candidates = self.monitor.preferred(self.targets(), exclude=tried)
        if candidates:
            return candidates[0]
        retryable = self.monitor.preferred(self.targets())
        return retryable[0] if retryable else None

    # -- health ------------------------------------------------------------------
    def heartbeat(self) -> dict[NodeId, float | None]:
        """Ping every target and feed the health monitor.

        Requires a runtime constructed with a policy (or monitor).
        Returns per-node round-trip seconds, ``None`` for failed pings.
        """
        if self.monitor is None:
            raise OffloadError(
                "heartbeat needs a ResiliencePolicy/HealthMonitor on the runtime"
            )
        return self.monitor.heartbeat(self.backend, self.targets())

    def _guard(self, node: NodeId, operation: Callable[[], Any]) -> Any:
        """Run one transport call with circuit check + health accounting."""
        if self.monitor is None:
            return operation()
        self.monitor.check(node)
        try:
            result = operation()
        except _TRANSPORT_ERRORS:
            self.monitor.record_failure(node)
            raise
        self.monitor.record_success(node)
        return result

    # -- memory management -----------------------------------------------------------
    def allocate(self, node: NodeId, count: int, dtype: Any = np.float64) -> BufferPtr:
        """Allocate ``count`` elements of ``dtype`` on target ``node``."""
        self._check_running()
        self.backend.check_target(node)
        if count <= 0:
            raise OffloadError(f"allocation count must be positive, got {count}")
        dt = np.dtype(dtype)
        with telemetry.span(
            "offload.allocate", node=node, bytes=count * dt.itemsize
        ) as span:
            addr = self._guard(
                node, lambda: self.backend.alloc_buffer(node, count * dt.itemsize)
            )
        ptr = BufferPtr(node=node, addr=addr, dtype_str=dt.str, count=count)
        # Remember the allocation-site span so a leak at shutdown can be
        # traced back to the code path that allocated the buffer.
        self._live_buffers[(node, addr)] = (ptr, span.span_id)
        telemetry.count("buffers.allocated")
        return ptr

    def free(self, ptr: BufferPtr) -> None:
        """Free a buffer allocated with :meth:`allocate`."""
        self._check_running()
        key = (ptr.node, ptr.addr)
        if key not in self._live_buffers:
            raise OffloadError(
                f"free of unknown or already-freed buffer {ptr!r} "
                "(freeing an offset pointer is not allowed)"
            )
        # Drop the tracking entry only after the backend confirms, so a
        # transport failure does not silently lose the buffer.
        with telemetry.span("offload.free", node=ptr.node):
            self._guard(ptr.node, lambda: self.backend.free_buffer(ptr.node, ptr.addr))
        self._live_buffers.pop(key, None)
        telemetry.count("buffers.freed")

    # -- data transfer -----------------------------------------------------------------
    def put(self, src: np.ndarray, dst: BufferPtr, count: int | None = None) -> Future:
        """Write host data into target memory (paper ``put``).

        Returns a future for API parity; current backends complete the
        transfer before returning.
        """
        self._check_running()
        data, n = self._coerce(src, dst, count)
        nbytes = n * dst.itemsize
        with telemetry.span("data.put", node=dst.node, bytes=nbytes):
            self._guard(
                dst.node,
                lambda: self.backend.write_buffer(dst.node, dst.addr, data[:n].tobytes()),
            )
        self._puts += 1
        telemetry.count("data.bytes_put", nbytes)
        return Future(CompletedHandle(None), label="put")

    def get(self, src: BufferPtr, dst: np.ndarray, count: int | None = None) -> Future:
        """Read target memory into host data (paper ``get``)."""
        self._check_running()
        data, n = self._coerce(dst, src, count)
        nbytes = n * src.itemsize
        with telemetry.span("data.get", node=src.node, bytes=nbytes):
            raw = self._guard(
                src.node,
                lambda: self.backend.read_buffer(src.node, src.addr, nbytes),
            )
        data[:n] = np.frombuffer(raw, dtype=src.dtype)[:n]
        self._gets += 1
        telemetry.count("data.bytes_got", nbytes)
        return Future(CompletedHandle(None), label="get")

    def copy(self, src: BufferPtr, dst: BufferPtr, count: int | None = None) -> Future:
        """Direct copy between two targets, orchestrated by the host."""
        self._check_running()
        n = min(src.count, dst.count) if count is None else count
        if n > src.count or n > dst.count:
            raise OffloadError(f"copy of {n} elements exceeds a buffer bound")
        if src.dtype != dst.dtype:
            raise OffloadError(f"copy dtype mismatch: {src.dtype_str} vs {dst.dtype_str}")
        if self.monitor is not None:
            self.monitor.check(src.node)
        nbytes = n * src.itemsize
        with telemetry.span(
            "data.copy", src_node=src.node, dst_node=dst.node, bytes=nbytes
        ):
            self._guard(
                dst.node,
                lambda: self.backend.copy_buffer(
                    src.node, src.addr, dst.node, dst.addr, nbytes
                ),
            )
        self._copies += 1
        telemetry.count("data.bytes_copied", nbytes)
        return Future(CompletedHandle(None), label="copy")

    def _coerce(
        self, host_array: np.ndarray, ptr: BufferPtr, count: int | None
    ) -> tuple[np.ndarray, int]:
        array = np.ascontiguousarray(host_array)
        if array.dtype != ptr.dtype:
            raise OffloadError(
                f"dtype mismatch: host {array.dtype} vs buffer {ptr.dtype_str}"
            )
        n = count if count is not None else min(array.size, ptr.count)
        if n > array.size or n > ptr.count:
            raise OffloadError(
                f"transfer of {n} elements exceeds host ({array.size}) or "
                f"target ({ptr.count}) extent"
            )
        return array.reshape(-1), n

    # -- introspection ---------------------------------------------------------------------
    @property
    def live_buffer_count(self) -> int:
        """Number of target buffers not yet freed."""
        return len(self._live_buffers)

    def stats(self) -> dict[str, Any]:
        """Runtime counters plus the backend's transport statistics."""
        data: dict[str, Any] = {
            "offloads_posted": self._offloads_posted,
            "puts": self._puts,
            "gets": self._gets,
            "copies": self._copies,
            "live_buffers": self.live_buffer_count,
            "backend": self.backend.stats(),
        }
        if self.policy is not None:
            data["retries"] = self._retries
            data["failovers"] = self._failovers
        if self._hedger is not None:
            data["hedging"] = self._hedger.snapshot()
        if self.admission is not None:
            data["qos"] = {
                "admission": self.admission.snapshot(),
                "window": self._fair_window.snapshot()
                if self._fair_window is not None else {},
            }
        if self.monitor is not None:
            data["health"] = self.monitor.snapshot()
        if telemetry.enabled():
            data["telemetry"] = telemetry.get().metrics.snapshot()
        return data

    def _drain_target_telemetry(self, timeout: float = 1.0) -> None:
        """Pull remaining target-side telemetry, best effort.

        Backends exposing ``fetch_target_telemetry`` (the TCP backend's
        ``OP_TELEMETRY``) hold target-process spans the host has not yet
        merged; shutdown is the last chance to collect them. The pull is
        bounded by ``timeout`` and never raises — a hung or dead target
        must not block shutdown — recording a ``telemetry.pull_failed``
        event instead so the loss is visible in the trace.
        """
        recorder = telemetry.get()
        if recorder is None:
            return
        fetch = getattr(self.backend, "fetch_target_telemetry", None)
        if fetch is None:
            return
        try:
            records = fetch(timeout=timeout)
        except Exception as exc:  # noqa: BLE001 - best effort by contract
            telemetry.event(
                "telemetry.pull_failed", category="telemetry",
                error=type(exc).__name__, detail=str(exc),
            )
            telemetry.count("telemetry.pull_failures")
            return
        if records:
            recorder.ingest(records)

    def shutdown(self) -> None:
        """Terminate target message loops and the backend (idempotent).

        Leaked target buffers (allocated but never freed) are reported
        via :class:`ResourceWarning` — target memory is a real resource
        on long-lived servers. Each entry names the owning node, address,
        size and, when telemetry was enabled at allocation time, the
        ``offload.allocate`` span id, so the trace pinpoints the leaking
        call site (span id 0 means telemetry was off).

        When telemetry is recording and the backend can fetch
        target-side records, they are drained (best effort, short
        timeout) before the transport closes.
        """
        if not self._shutdown:
            self._shutdown = True
            # A clean shutdown is not a crash: leave the flight
            # recorder's bundle scope before futures are torn down.
            flightrecorder.detach_runtime(self)
            self._drain_target_telemetry()
            if self._live_buffers:
                pointers = ", ".join(
                    f"node {node} @ {addr:#x} "
                    f"({ptr.nbytes} B, alloc span {span_id:#x})"
                    for (node, addr), (ptr, span_id) in sorted(
                        self._live_buffers.items()
                    )
                )
                warnings.warn(
                    f"Runtime.shutdown with {len(self._live_buffers)} leaked "
                    f"target buffer(s): {pointers}",
                    ResourceWarning,
                    stacklevel=2,
                )
                telemetry.count("buffers.leaked", len(self._live_buffers))
            self.backend.shutdown()

    def _check_running(self) -> None:
        if self._shutdown:
            raise OffloadError("runtime already shut down")

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
