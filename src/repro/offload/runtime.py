"""The HAM-Offload runtime: public API bound to one backend.

One :class:`Runtime` instance per application role. The host-side runtime
exposes the paper's Table II API; the target-side message loop lives in
the backends (an in-process image, a TCP server process, or a simulated
VE process).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import OffloadError
from repro.ham.functor import Functor
from repro.offload.buffer import BufferPtr
from repro.offload.future import CompletedHandle, Future
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import Backend

__all__ = ["Runtime"]


class Runtime:
    """Host-side HAM-Offload runtime (paper Table II operations).

    Parameters
    ----------
    backend:
        The communication backend connecting this process to its targets.
    """

    def __init__(self, backend: "Backend") -> None:
        self.backend = backend
        self._live_buffers: dict[tuple[NodeId, int], BufferPtr] = {}
        self._shutdown = False
        self._offloads_posted = 0
        self._puts = 0
        self._gets = 0
        self._copies = 0

    # -- topology ------------------------------------------------------------
    def num_nodes(self) -> int:
        """Number of processes of the running application."""
        return self.backend.num_nodes()

    def this_node(self) -> NodeId:
        """Address of the current process (the host)."""
        return HOST_NODE

    def get_node_descriptor(self, node: NodeId) -> NodeDescriptor:
        """Descriptor of ``node``."""
        return self.backend.descriptor(node)

    def targets(self) -> list[NodeId]:
        """All offload-target node addresses."""
        return list(range(1, self.num_nodes()))

    # -- offloading --------------------------------------------------------------
    def async_(self, node: NodeId, functor: Functor) -> Future:
        """Asynchronous offload of ``functor`` to ``node`` (paper ``async``)."""
        self._check_running()
        self.backend.check_target(node)
        if not isinstance(functor, Functor):
            raise OffloadError(
                "async_/sync expect a Functor; build one with f2f(fn, args...)"
            )
        handle = self.backend.post_invoke(node, functor)
        self._offloads_posted += 1
        return Future(handle, label=functor.type_name)

    def sync(self, node: NodeId, functor: Functor) -> Any:
        """Synchronous offload: ``async_`` + ``get``."""
        return self.async_(node, functor).get()

    # -- memory management -----------------------------------------------------------
    def allocate(self, node: NodeId, count: int, dtype: Any = np.float64) -> BufferPtr:
        """Allocate ``count`` elements of ``dtype`` on target ``node``."""
        self._check_running()
        self.backend.check_target(node)
        if count <= 0:
            raise OffloadError(f"allocation count must be positive, got {count}")
        dt = np.dtype(dtype)
        addr = self.backend.alloc_buffer(node, count * dt.itemsize)
        ptr = BufferPtr(node=node, addr=addr, dtype_str=dt.str, count=count)
        self._live_buffers[(node, addr)] = ptr
        return ptr

    def free(self, ptr: BufferPtr) -> None:
        """Free a buffer allocated with :meth:`allocate`."""
        self._check_running()
        if self._live_buffers.pop((ptr.node, ptr.addr), None) is None:
            raise OffloadError(
                f"free of unknown or already-freed buffer {ptr!r} "
                "(freeing an offset pointer is not allowed)"
            )
        self.backend.free_buffer(ptr.node, ptr.addr)

    # -- data transfer -----------------------------------------------------------------
    def put(self, src: np.ndarray, dst: BufferPtr, count: int | None = None) -> Future:
        """Write host data into target memory (paper ``put``).

        Returns a future for API parity; current backends complete the
        transfer before returning.
        """
        self._check_running()
        data, n = self._coerce(src, dst, count)
        self.backend.write_buffer(dst.node, dst.addr, data[:n].tobytes())
        self._puts += 1
        return Future(CompletedHandle(None), label="put")

    def get(self, src: BufferPtr, dst: np.ndarray, count: int | None = None) -> Future:
        """Read target memory into host data (paper ``get``)."""
        self._check_running()
        data, n = self._coerce(dst, src, count)
        raw = self.backend.read_buffer(src.node, src.addr, n * src.itemsize)
        data[:n] = np.frombuffer(raw, dtype=src.dtype)[:n]
        self._gets += 1
        return Future(CompletedHandle(None), label="get")

    def copy(self, src: BufferPtr, dst: BufferPtr, count: int | None = None) -> Future:
        """Direct copy between two targets, orchestrated by the host."""
        self._check_running()
        n = min(src.count, dst.count) if count is None else count
        if n > src.count or n > dst.count:
            raise OffloadError(f"copy of {n} elements exceeds a buffer bound")
        if src.dtype != dst.dtype:
            raise OffloadError(f"copy dtype mismatch: {src.dtype_str} vs {dst.dtype_str}")
        self.backend.copy_buffer(
            src.node, src.addr, dst.node, dst.addr, n * src.itemsize
        )
        self._copies += 1
        return Future(CompletedHandle(None), label="copy")

    def _coerce(
        self, host_array: np.ndarray, ptr: BufferPtr, count: int | None
    ) -> tuple[np.ndarray, int]:
        array = np.ascontiguousarray(host_array)
        if array.dtype != ptr.dtype:
            raise OffloadError(
                f"dtype mismatch: host {array.dtype} vs buffer {ptr.dtype_str}"
            )
        n = count if count is not None else min(array.size, ptr.count)
        if n > array.size or n > ptr.count:
            raise OffloadError(
                f"transfer of {n} elements exceeds host ({array.size}) or "
                f"target ({ptr.count}) extent"
            )
        return array.reshape(-1), n

    # -- introspection ---------------------------------------------------------------------
    @property
    def live_buffer_count(self) -> int:
        """Number of target buffers not yet freed."""
        return len(self._live_buffers)

    def stats(self) -> dict[str, Any]:
        """Runtime counters plus the backend's transport statistics."""
        return {
            "offloads_posted": self._offloads_posted,
            "puts": self._puts,
            "gets": self._gets,
            "copies": self._copies,
            "live_buffers": self.live_buffer_count,
            "backend": self.backend.stats(),
        }

    def shutdown(self) -> None:
        """Terminate target message loops and the backend (idempotent)."""
        if not self._shutdown:
            self._shutdown = True
            self.backend.shutdown()

    def _check_running(self) -> None:
        if self._shutdown:
            raise OffloadError("runtime already shut down")

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
