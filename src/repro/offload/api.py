"""Free-function offload API — the exact shape of paper Table II.

The C++ original exposes ``offload::sync(...)``, ``offload::async(...)``,
``offload::allocate<T>(...)`` as free functions against a process-global
runtime. This module mirrors that: :func:`init` binds a backend to the
module-global runtime, after which the Table II operations are plain
functions::

    from repro.offload import api as offload

    offload.init(DmaCommBackend())
    target = 1
    a = offload.allocate(target, 1024)
    offload.put(host_array, a)
    future = offload.async_(target, f2f(kernel, a, 1024))
    print(future.get())
    offload.finalize()

Object-oriented use (multiple runtimes in one process) goes through
:class:`repro.offload.runtime.Runtime` directly; this module is a thin
veneer for application code that wants the paper's look and feel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import OffloadError
from repro.ham.functor import Functor
from repro.offload.buffer import BufferPtr
from repro.offload.future import Future
from repro.offload.node import NodeDescriptor, NodeId
from repro.offload.qos import QoSConfig, TenantContext
from repro.offload.resilience import ResiliencePolicy
from repro.offload.runtime import Runtime
from repro.telemetry import flightrecorder as _flightrecorder
from repro.telemetry import recorder as _telemetry
from repro.telemetry.inspect import RuntimeInspector
from repro.telemetry.promexport import MetricsServer, TelemetryConfig
from repro.telemetry.sampling import HeadSampler, TailPipeline
from repro.telemetry.slo import SLOMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import Backend

__all__ = [
    "init",
    "finalize",
    "is_initialized",
    "runtime",
    "sync",
    "async_",
    "allocate",
    "free",
    "put",
    "get",
    "copy",
    "num_nodes",
    "this_node",
    "get_node_descriptor",
    "metrics_server",
    "introspect",
]

_runtime: Runtime | None = None
_metrics_server: MetricsServer | None = None


def init(
    backend: "Backend | str",
    policy: ResiliencePolicy | None = None,
    *,
    telemetry: "bool | dict | TelemetryConfig" = False,
    window: int | None = None,
    qos: "QoSConfig | None" = None,
    **backend_options: Any,
) -> Runtime:
    """Initialize the process-global runtime with ``backend``.

    ``backend`` is either a constructed
    :class:`~repro.backends.base.Backend` or a short name —
    ``"local"``, ``"tcp"`` or ``"shm"`` — resolved through
    :func:`repro.backends.create_backend` (the string forms spawn and
    connect to a target server in one call, e.g.
    ``offload.init(backend="shm")``). With a short name, extra keyword
    arguments are forwarded to the backend constructor — e.g.
    ``offload.init("tcp", batch=True)`` enables adaptive frame
    coalescing, ``batch={"max_delay_us": 500}`` tunes it, and
    ``workers=8`` sizes the spawned server's pool. A constructed
    backend carries its own options; passing extras alongside one is an
    error.

    ``policy`` optionally installs a
    :class:`~repro.offload.resilience.ResiliencePolicy` (deadlines,
    retries, health monitoring) on the runtime.

    ``window`` bounds the number of invocations in flight on the backend
    (backpressure for pipelined producers); ``None`` keeps the default
    of :data:`~repro.backends.base.DEFAULT_INFLIGHT_LIMIT`.

    ``qos`` installs the multi-tenant serving layer
    (:class:`~repro.offload.qos.QoSConfig`): weighted-fair window
    scheduling across tenants, per-tenant rate limits, deadline-aware
    admission and priority-ordered load shedding; ``sync``/``async_``
    then accept a ``tenant=`` argument. See ``docs/resilience.md``.

    ``telemetry`` enables the process-global recorder
    (:func:`repro.telemetry.enable`) before any operation runs, so the
    whole session is traced; see ``docs/observability.md``. It accepts:

    * ``True`` — plain recording, default capacity;
    * a :class:`~repro.telemetry.promexport.TelemetryConfig` (or a dict
      with its field names) — additionally:

      * ``metrics_port`` (0 for an ephemeral port) starts a live
        Prometheus ``/metrics`` + ``/healthz`` HTTP endpoint over the
        recorder's metrics and kernel profiles; query its bound address
        via :func:`metrics_server`;
      * ``sample_rate`` installs head-based trace sampling plus the
        tail-retention pipeline (slow/errored traces survive even when
        unsampled) — see :mod:`repro.telemetry.sampling`;
      * ``slo_enabled`` / ``slos`` configure burn-rate SLO monitoring
        whose breaches degrade ``/healthz`` — see
        :mod:`repro.telemetry.slo`;
      * ``tsdb`` (``True``, or a dict with ``interval`` / ``retention``
        / ``max_series`` / ``probe``) installs the in-process
        time-series store, per-target scoreboard and median/MAD anomaly
        detector — see :mod:`repro.telemetry.tsdb`.

    Raises
    ------
    OffloadError
        If a runtime is already initialized (call :func:`finalize` first).
    """
    global _runtime, _metrics_server
    if _runtime is not None:
        raise OffloadError("offload API already initialized; call finalize() first")
    if isinstance(backend, str):
        from repro.backends import create_backend

        backend = create_backend(backend, **backend_options)
    elif backend_options:
        raise OffloadError(
            "backend options "
            f"({', '.join(sorted(backend_options))}) only apply to the "
            "string form of init; pass them to the backend constructor "
            "instead"
        )
    config = TelemetryConfig.coerce(telemetry)
    if config.enabled:
        recorder = _telemetry.enable(config.capacity)
        if config.sample_rate is not None:
            recorder.sampler = HeadSampler(config.sample_rate)
            recorder.pipeline = TailPipeline(
                max_pending=config.tail_max_pending,
                window=config.tail_window,
                min_samples=config.tail_min_samples,
            )
        if config.slo_enabled:
            recorder.slo = SLOMonitor(
                config.slos or None,
                fast_window=config.slo_fast_window,
                slow_window=config.slo_slow_window,
                burn_threshold=config.slo_burn_threshold,
                min_samples=config.slo_min_samples,
                emit=recorder.force_event,
                metrics=recorder.metrics,
            )
        if config.tsdb:
            from repro.telemetry.tsdb import install_tsdb

            install_tsdb(
                recorder,
                interval=config.tsdb_interval,
                retention=config.tsdb_retention,
                max_series=config.tsdb_max_series,
                probe=config.tsdb_probe,
            )
        if config.metrics_port is not None:
            _metrics_server = MetricsServer(
                _full_snapshot_fn(recorder),
                host=config.metrics_host,
                port=config.metrics_port,
                health_fn=_health_fn(recorder),
                introspect_fn=_introspect_fn,
            )
    if config.crash_dir is not None:
        # Arm flight-recorder dumping (and SIGUSR2) for this process;
        # the recorder itself has been noting events since import.
        _flightrecorder.configure(config.crash_dir)
    _runtime = Runtime(backend, policy=policy, window=window, qos=qos)
    if config.enabled and config.tsdb:
        # Started only now: the scoreboard needs the runtime's backend
        # for its per-target stats before the first tick is useful.
        recorder = _telemetry.get()
        if recorder is not None and recorder.tsdb is not None:
            recorder.tsdb.attach_runtime(_runtime)
            recorder.tsdb.start()
    return _runtime


def _full_snapshot_fn(recorder: "_telemetry.Recorder"):
    """Metrics snapshot extended with the per-kernel profile series."""

    def snapshot() -> dict:
        snap = recorder.metrics.snapshot()
        snap["histograms"].update(recorder.profiles.metric_series())
        return snap

    return snapshot


def _health_fn(recorder: "_telemetry.Recorder"):
    """``/healthz`` body: degraded while any SLO burns too hot.

    Active TSDB anomalies ride along as *detail* — advisory signal for
    an operator or a placement layer, not a health verdict, so they
    never flip the status on their own.
    """

    def health() -> dict:
        monitor = recorder.slo
        breached = monitor.breached() if monitor is not None else []
        body: dict = {"status": "ok"}
        if breached:
            body = {"status": "degraded", "breached": breached}
        tsdb = recorder.tsdb
        if tsdb is not None:
            anomalies = tsdb.detector.anomalies()
            if anomalies:
                body["anomalies"] = anomalies
        return body

    return health


def _introspect_fn() -> dict:
    """``GET /introspect`` body: the live-state snapshot, or a stub.

    Reads the module global lazily — the metrics server starts before
    the runtime exists and may outlive a ``finalize``/``init`` cycle.
    """
    if _runtime is None:
        return {"error": "offload API not initialized"}
    return RuntimeInspector(_runtime).snapshot()


def introspect(*, probe_target: bool = True) -> dict:
    """One merged live-state snapshot of the global runtime.

    See :class:`repro.telemetry.inspect.RuntimeInspector`. The same
    payload is served on the metrics server's ``/introspect`` endpoint
    when one is running.
    """
    return RuntimeInspector(runtime()).snapshot(probe_target=probe_target)


def finalize() -> None:
    """Shut the global runtime down (idempotent).

    Also stops the ``/metrics`` endpoint if :func:`init` started one.
    """
    global _runtime, _metrics_server
    recorder = _telemetry.get()
    if recorder is not None and recorder.tsdb is not None:
        recorder.tsdb.stop()
        # The recorder survives finalize -> init cycles; a detached
        # store would keep stale anomalies visible (and per-target
        # metric plumbing paying for a consumer that no longer exists).
        recorder.tsdb = None
    if _runtime is not None:
        _runtime.shutdown()
        _runtime = None
    if _metrics_server is not None:
        _metrics_server.close()
        _metrics_server = None


def metrics_server() -> MetricsServer | None:
    """The live ``/metrics`` endpoint, or ``None`` if not started."""
    return _metrics_server


def is_initialized() -> bool:
    """Whether :func:`init` has been called (and not yet finalized)."""
    return _runtime is not None


def runtime() -> Runtime:
    """The global runtime.

    Raises
    ------
    OffloadError
        If :func:`init` has not been called.
    """
    if _runtime is None:
        raise OffloadError("offload API not initialized; call init(backend) first")
    return _runtime


def sync(
    node: NodeId,
    functor: Functor,
    *,
    idempotent: bool = False,
    timeout: float | None = None,
    tenant: "str | TenantContext | None" = None,
) -> Any:
    """Synchronous offload of ``functor`` to ``node`` (Table II ``sync``).

    ``idempotent`` and ``timeout`` engage the runtime's resilience
    policy; ``tenant`` tags the offload for the QoS layer when one is
    installed. See :meth:`repro.offload.runtime.Runtime.sync`.
    """
    return runtime().sync(node, functor, idempotent=idempotent,
                          timeout=timeout, tenant=tenant)


def async_(
    node: NodeId,
    functor: Functor,
    *,
    tenant: "str | TenantContext | None" = None,
) -> Future:
    """Asynchronous offload; returns a future (Table II ``async``)."""
    return runtime().async_(node, functor, tenant=tenant)


def allocate(node: NodeId, count: int, dtype: Any = np.float64) -> BufferPtr:
    """Allocate ``count`` elements on ``node`` (Table II ``allocate<T>``)."""
    return runtime().allocate(node, count, dtype)


def free(ptr: BufferPtr) -> None:
    """Free target memory (Table II ``free``)."""
    runtime().free(ptr)


def put(src: np.ndarray, dst: BufferPtr, count: int | None = None) -> Future:
    """Write host data into target memory (Table II ``put``)."""
    return runtime().put(src, dst, count)


def get(src: BufferPtr, dst: np.ndarray, count: int | None = None) -> Future:
    """Read target memory into host data (Table II ``get``)."""
    return runtime().get(src, dst, count)


def copy(src: BufferPtr, dst: BufferPtr, count: int | None = None) -> Future:
    """Direct target-to-target copy (Table II ``copy``)."""
    return runtime().copy(src, dst, count)


def num_nodes() -> int:
    """Number of processes of the running application (Table II)."""
    return runtime().num_nodes()


def this_node() -> NodeId:
    """Address of the current process (Table II)."""
    return runtime().this_node()


def get_node_descriptor(node: NodeId) -> NodeDescriptor:
    """Descriptor of ``node`` (Table II)."""
    return runtime().get_node_descriptor(node)
