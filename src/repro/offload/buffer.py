"""Typed remote buffers (paper Table II: ``buffer_ptr<T>``).

A :class:`BufferPtr` names memory on an offload target: the node address
is part of the pointer, exactly as in the paper. It is a plain, picklable
value object so it can travel *inside* active messages as a function
argument; on the target, the runtime's resolver turns it into a live
numpy view of the target-local memory (see
:meth:`repro.backends.base.Backend.resolve_buffer`).

Element typing uses numpy dtypes; pointer arithmetic (``ptr + k``) moves
by *elements*, like the C++ original.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import OffloadError
from repro.offload.node import NodeId

__all__ = ["BufferPtr"]


@dataclass(frozen=True)
class BufferPtr:
    """Pointer to target memory of a given element type.

    Attributes
    ----------
    node:
        The owning node's address.
    addr:
        Target-local address (opaque outside the backend).
    dtype_str:
        Element dtype as a string (kept as ``str`` so the pointer stays
        trivially hashable/serializable).
    count:
        Number of elements reachable through this pointer.
    """

    node: NodeId
    addr: int
    dtype_str: str
    count: int

    @property
    def dtype(self) -> np.dtype:
        """The element dtype."""
        return np.dtype(self.dtype_str)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total bytes reachable through this pointer."""
        return self.count * self.itemsize

    def __add__(self, elements: int) -> "BufferPtr":
        """Pointer arithmetic in elements (``ptr + k``)."""
        if not isinstance(elements, int):
            return NotImplemented
        if elements < 0 or elements > self.count:
            raise OffloadError(
                f"pointer offset {elements} outside buffer of {self.count} elements"
            )
        return replace(
            self,
            addr=self.addr + elements * self.itemsize,
            count=self.count - elements,
        )

    def first(self, count: int) -> "BufferPtr":
        """A pointer restricted to the first ``count`` elements."""
        if count < 0 or count > self.count:
            raise OffloadError(
                f"sub-buffer of {count} elements outside buffer of {self.count}"
            )
        return replace(self, count=count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPtr(node={self.node}, addr={self.addr:#x}, "
            f"dtype={self.dtype_str}, count={self.count})"
        )
