"""Hedged requests: tail-tolerant duplication of straggling offloads.

Retries (PR 4's :class:`~repro.offload.resilience.ResiliencePolicy`)
react to *failure* — the first attempt must die before the second one
starts, so a straggler still costs a full deadline. Hedging reacts to
*slowness*: when a synchronous offload of an idempotent,
location-independent functor has waited longer than the kernel's rolling
tail latency (the p99 of its continuous profile, the "deferred hedge"
of the Tail at Scale playbook), the same functor is posted to a second
healthy target and the first reply wins. The loser is simply abandoned:
the channel contract matches replies by correlation id, so the late
reply completes its own handle and is dropped — it can never be confused
with the winner, and the abandoned future never settles, so per-kernel
profiles and SLO windows count the logical offload exactly once.

Safety gates (all must hold, checked per call):

* the caller declared the operation ``idempotent=True`` — hedging *is* a
  duplicate execution;
* the functor is location-free: no :class:`~repro.offload.buffer.
  BufferPtr` argument binds it to one node's memory;
* the backend has at least two targets and the
  :class:`~repro.offload.resilience.HealthMonitor` can name a healthy
  secondary (the hedge must not pile onto a struggling node);
* the kernel's profile has enough samples for a trustworthy trigger —
  without data the hedger stays out of the way entirely.

Cost control: the trigger is the rolling ``percentile`` (default p99),
so at steady state only ~1 % of invokes spawn a duplicate; the
``multiplier`` and ``min_wait`` knobs push the trigger further out when
even that is too much.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import OffloadError, RemoteExecutionError
from repro.offload.buffer import BufferPtr
from repro.telemetry import recorder as telemetry
from repro.telemetry.profile import TOTAL_PHASE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ham.functor import Functor
    from repro.offload.future import Future
    from repro.offload.node import NodeId
    from repro.offload.runtime import Runtime

__all__ = ["HedgePolicy", "Hedger"]

#: Poll interval bounds for first-of-two completion polling. The poll
#: starts tight (a hedge fires near the tail, replies are imminent) and
#: backs off to the ceiling to stay cheap on long stragglers.
_POLL_FLOOR = 50e-6
_POLL_CEILING = 1e-3


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs governing when a straggling offload is duplicated.

    Parameters
    ----------
    percentile:
        Percentile of the kernel's rolling round-trip profile used as
        the hedge trigger — wait this long before duplicating (99.0
        bounds the duplicate-execution rate near 1 %).
    multiplier:
        Scale factor on the trigger (2.0 = hedge at twice the p99).
    min_wait:
        Floor on the trigger delay in seconds, so sub-millisecond
        kernels do not hedge on scheduler noise.
    min_samples:
        Completed offloads of the kernel required before the trigger is
        trusted; below it no hedge fires.
    """

    percentile: float = 99.0
    multiplier: float = 1.0
    min_wait: float = 0.001
    min_samples: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise OffloadError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.multiplier <= 0:
            raise OffloadError(
                f"multiplier must be positive, got {self.multiplier}"
            )
        if self.min_wait < 0:
            raise OffloadError(f"min_wait must be >= 0, got {self.min_wait}")
        if self.min_samples < 1:
            raise OffloadError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )


def is_location_free(functor: "Functor") -> bool:
    """Whether ``functor`` may execute on any target node.

    A functor carrying a :class:`BufferPtr` argument dereferences one
    specific node's memory — duplicating it to a different target would
    read garbage or trample foreign state, so such functors never hedge
    (mirroring the failover rule of the retry path).
    """
    for arg in functor.args:
        if isinstance(arg, BufferPtr):
            return False
    for _name, value in functor.kwargs:
        if isinstance(value, BufferPtr):
            return False
    return True


class Hedger:
    """Issues hedge duplicates for straggling synchronous offloads.

    One instance per runtime, stateless apart from counters; the trigger
    delay is read from the live recorder's per-kernel profile on every
    call, so it tracks traffic shifts without explicit feeds.
    """

    def __init__(self, policy: HedgePolicy) -> None:
        self.policy = policy
        self.hedges = 0
        self.hedge_wins = 0

    # -- trigger ----------------------------------------------------------
    def delay_for(self, kernel: str) -> float | None:
        """Seconds to wait before hedging ``kernel``, or ``None``.

        ``None`` — no telemetry or not enough profile samples — means
        "do not hedge"; the hedger fails static rather than guessing.
        """
        recorder = telemetry.get()
        if recorder is None:
            return None
        profile = recorder.profiles.profiles().get(kernel)
        if profile is None:
            return None
        hist = profile.phases().get(TOTAL_PHASE)
        if hist is None or hist.count < self.policy.min_samples:
            return None
        trigger = float(hist.percentile(self.policy.percentile))
        return max(self.policy.min_wait, trigger * self.policy.multiplier)

    # -- execution --------------------------------------------------------
    def await_hedged(
        self,
        runtime: "Runtime",
        future: "Future",
        functor: "Functor",
        primary: "NodeId",
        deadline: float | None,
    ) -> Any:
        """Await ``future``, duplicating to a second target if it lags.

        The caller has already validated the safety gates (idempotent,
        location-free, secondary available); this method owns the timing:
        poll the primary until the hedge trigger, then race primary
        against a duplicate on the healthiest other target, first
        successful settle wins. Transport errors on one arm leave the
        race to the other arm; :class:`RemoteExecutionError` propagates
        immediately from either arm (the application failed — the
        transport worked, and the twin would deterministically fail the
        same way). With both arms dead the primary's error propagates.
        """
        delay = self.delay_for(functor.type_name)
        if delay is None:
            return future.get(timeout=deadline)
        overall = None if deadline is None else time.monotonic() + deadline
        if not self._poll(future, min(delay, deadline) if deadline is not None
                          else delay):
            hedge_future = self._issue_hedge(runtime, functor, primary)
            if hedge_future is not None:
                return self._race(future, hedge_future, overall)
        # Trigger never fired a duplicate (fast reply, or no secondary):
        # plain blocking get for whatever deadline remains.
        return future.get(timeout=self._remaining(overall))

    def _poll(self, future: "Future", window: float) -> bool:
        """Poll ``future`` for up to ``window`` seconds; True if done."""
        deadline = time.monotonic() + window
        pause = _POLL_FLOOR
        while True:
            if future.test():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(pause)
            pause = min(_POLL_CEILING, pause * 2)

    def _issue_hedge(
        self, runtime: "Runtime", functor: "Functor", primary: "NodeId"
    ) -> "Future | None":
        """Post the duplicate to the healthiest target besides the primary."""
        assert runtime.monitor is not None
        candidates = runtime.monitor.preferred(
            runtime.targets(), exclude=[primary]
        )
        if not candidates:
            return None
        candidates, avoided = self._prefer_non_anomalous(candidates)
        secondary = candidates[0]
        try:
            hedge_future = runtime.async_(secondary, functor)
        except OffloadError:
            # Posting the hedge failed (circuit opened between the
            # preferred() call and the post, transport refused): the
            # primary is still in flight — a failed hedge must never
            # fail the operation.
            return None
        self.hedges += 1
        telemetry.count("offload.hedges")
        telemetry.event(
            "resilience.hedge", category="resilience",
            functor=functor.type_name, primary=primary, secondary=secondary,
            trigger_s=self.delay_for(functor.type_name),
            avoided=sorted(avoided),
        )
        return hedge_future

    @staticmethod
    def _prefer_non_anomalous(
        candidates: "list[NodeId]",
    ) -> "tuple[list[NodeId], set[int]]":
        """Stable-reorder ``candidates`` so anomalous targets go last.

        Advisory input from the TSDB's median/MAD detector: a target the
        detector currently flags (elevated reply p95, queue growth, error
        burst) is a poor place to send the latency-rescue duplicate. The
        health ranking still dominates — anomalous targets are demoted,
        never removed, so a fleet that is entirely anomalous still
        hedges somewhere. Returns the reordered list plus the node ids
        that were demoted (attached to the hedge event for post-mortems).
        """
        recorder = telemetry.get()
        tsdb = getattr(recorder, "tsdb", None) if recorder is not None else None
        if tsdb is None:
            return candidates, set()
        anomalous = tsdb.detector.anomalous_nodes()
        if not anomalous:
            return candidates, set()
        clean = [c for c in candidates if int(c) not in anomalous]
        flagged = [c for c in candidates if int(c) in anomalous]
        if not clean or not flagged:
            return candidates, set()
        return clean + flagged, {int(c) for c in flagged}

    def _race(
        self,
        primary_future: "Future",
        hedge_future: "Future",
        overall: float | None,
    ) -> Any:
        """First successful settle of two in-flight twins wins.

        The loser is abandoned un-settled: its reply (if one ever comes)
        completes the backend handle via correlation-id matching and is
        dropped there, and because ``Future._settle`` never runs for it,
        ``complete_offload`` fires exactly once for the logical offload.
        """
        arms: list[tuple[str, "Future"]] = [
            ("primary", primary_future), ("hedge", hedge_future),
        ]
        last_error: OffloadError | None = None
        pause = _POLL_FLOOR
        while len(arms) > 1:
            for name, arm in list(arms):
                if not arm.test():
                    continue
                try:
                    value = arm.get()
                except RemoteExecutionError:
                    # The application raised on the target:
                    # deterministic — do not wait for the twin to fail
                    # identically.
                    raise
                except OffloadError as exc:
                    # This arm's transport died; the race continues on
                    # the surviving arm alone.
                    arms.remove((name, arm))
                    last_error = exc
                    continue
                if name == "hedge":
                    self.hedge_wins += 1
                    telemetry.count("offload.hedge_wins")
                return value
            if not arms:
                break
            if overall is not None and time.monotonic() >= overall:
                # Both arms outlived the caller's deadline; report it on
                # the primary so its future carries the timeout record.
                return primary_future.get(timeout=0)
            time.sleep(pause)
            pause = min(_POLL_CEILING, pause * 2)
        if arms:
            # One arm left: no point polling, block on it directly.
            return arms[0][1].get(timeout=self._remaining(overall))
        # Both arms died on transport errors: surface the last one.
        assert last_error is not None
        raise last_error

    @staticmethod
    def _remaining(overall: float | None) -> float | None:
        if overall is None:
            return None
        return max(0.0, overall - time.monotonic())

    def snapshot(self) -> dict[str, int]:
        """Hedge counters for ``Runtime.stats()``."""
        return {"hedges": self.hedges, "hedge_wins": self.hedge_wins}
