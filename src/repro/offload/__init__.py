"""HAM-Offload — the public offloading API (paper Table II).

The API mirrors the C++ original:

==============================  ==========================================
paper                            here
==============================  ==========================================
``node_t``                       :data:`~repro.offload.node.NodeId` (int)
``node_descriptor``              :class:`NodeDescriptor`
``buffer_ptr<T>``                :class:`BufferPtr`
``future<T>``                    :class:`Future`
``f2f(f, args...)``              :func:`repro.ham.f2f`
``sync(node, f)``                :meth:`Runtime.sync`
``async(node, f)``               :meth:`Runtime.async_`
``allocate<T>(node, n)``         :meth:`Runtime.allocate`
``free(ptr)``                    :meth:`Runtime.free`
``put(src, dst, n)``             :meth:`Runtime.put`
``get(src, dst, n)``             :meth:`Runtime.get`
``copy(src, dst, n)``            :meth:`Runtime.copy`
``num_nodes()``                  :meth:`Runtime.num_nodes`
``this_node()``                  :meth:`Runtime.this_node`
``get_node_descriptor(n)``       :meth:`Runtime.get_node_descriptor`
==============================  ==========================================

A :class:`Runtime` is bound to one communication backend
(:mod:`repro.backends`); the same application code runs unchanged on the
functional ``local``/``tcp`` backends and on the simulated ``veo``/``dma``
backends — the paper's portability claim (Sec. V end).
"""

from repro.ham import Migratable, f2f, offloadable
from repro.offload.buffer import BufferPtr
from repro.offload.future import Future
from repro.offload.hedging import HedgePolicy, Hedger
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.offload.qos import (
    BEST_EFFORT,
    PREMIUM,
    STANDARD,
    AdmissionController,
    FairInflightWindow,
    QoSConfig,
    TenantContext,
    TenantPolicy,
    TokenBucket,
    current_tenant,
    tenant_scope,
)
from repro.offload.resilience import HealthMonitor, NodeHealth, ResiliencePolicy
from repro.offload.runtime import Runtime

__all__ = [
    "AdmissionController",
    "BEST_EFFORT",
    "BufferPtr",
    "FairInflightWindow",
    "Future",
    "HOST_NODE",
    "HealthMonitor",
    "HedgePolicy",
    "Hedger",
    "Migratable",
    "NodeDescriptor",
    "NodeHealth",
    "NodeId",
    "PREMIUM",
    "QoSConfig",
    "ResiliencePolicy",
    "Runtime",
    "STANDARD",
    "TenantContext",
    "TenantPolicy",
    "TokenBucket",
    "current_tenant",
    "f2f",
    "offloadable",
    "tenant_scope",
]
