"""Node addressing (paper Table II: ``node_t`` / ``node_descriptor``).

A HAM-Offload application is a set of processes, each performing either
the host or an offload-target role. Node 0 is the host by convention;
targets are numbered from 1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeId", "HOST_NODE", "NodeDescriptor"]

#: Address type of a process (an offload host or target).
NodeId = int

#: The host process address.
HOST_NODE: NodeId = 0


@dataclass(frozen=True)
class NodeDescriptor:
    """Information on a node (paper: "e.g. name or device-type").

    Attributes
    ----------
    node:
        The node address.
    name:
        Human-readable name (``"vh"``, ``"ve0"``, ``"tcp:localhost:7001"``).
    device_type:
        Coarse device class: ``"host"``, ``"ve"``, ``"cpu"``, ...
    description:
        Free-form detail (backend, hardware model, ...).
    """

    node: NodeId
    name: str
    device_type: str
    description: str = ""

    @property
    def is_host(self) -> bool:
        """Whether this node performs the host role."""
        return self.node == HOST_NODE
