"""VEO request handles.

``veo_call_async`` returns a request id in the C API; here it returns a
:class:`VeoRequest` whose :meth:`wait_result` drives the simulation until
the VE has produced the result (``veo_call_wait_result``), and whose
:meth:`peek_result` mirrors ``veo_call_peek_result``.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import VeoCommandError
from repro.sim import Simulator

__all__ = ["RequestState", "VeoRequest"]


class RequestState(enum.Enum):
    """Lifecycle of a VEO command (mirrors ``VEO_COMMAND_*``)."""

    PENDING = "pending"
    DONE = "done"
    ERROR = "error"


class VeoRequest:
    """Handle to one asynchronous VEO command."""

    def __init__(self, sim: Simulator, reqid: int, label: str = "") -> None:
        self.sim = sim
        self.reqid = reqid
        self.label = label
        self._state = RequestState.PENDING
        self._value: Any = None
        self._error: BaseException | None = None

    @property
    def state(self) -> RequestState:
        """Current command state."""
        return self._state

    def _complete(self, value: Any) -> None:
        assert self._state is RequestState.PENDING
        self._state = RequestState.DONE
        self._value = value

    def _fail(self, error: BaseException) -> None:
        assert self._state is RequestState.PENDING
        self._state = RequestState.ERROR
        self._error = error

    def peek_result(self) -> tuple[RequestState, Any]:
        """Non-blocking probe (``veo_call_peek_result``)."""
        return self._state, self._value

    def wait_result(self) -> Any:
        """Block (drive simulation) until the command completes.

        Raises
        ------
        VeoCommandError
            If the command failed on the VE; the VE-side exception is the
            ``__cause__``.
        """
        done = self.sim.run_until(lambda: self._state is not RequestState.PENDING)
        if not done and self._state is RequestState.PENDING:
            raise VeoCommandError(
                f"request {self.reqid} ({self.label}): simulation ran dry "
                "before completion"
            )
        if self._state is RequestState.ERROR:
            assert self._error is not None
            raise VeoCommandError(
                f"request {self.reqid} ({self.label}) failed on the VE"
            ) from self._error
        return self._value
