"""VEO — the Vector Engine Offloading API.

A Python mirror of NEC's low-level VEO C library (version 1.3.2a, the one
benchmarked in the paper), implemented on the simulated VEOS substrate.
The API surface matches the C functions the paper's HAM-Offload backend
composes:

=====================  =============================================
C API                   here
=====================  =============================================
``veo_proc_create``     :class:`VeoProc` constructor
``veo_load_library``    :meth:`VeoProc.load_library`
``veo_get_sym``         :meth:`VeoLibraryHandle.get_symbol`
``veo_alloc_mem``       :meth:`VeoProc.alloc_mem`
``veo_free_mem``        :meth:`VeoProc.free_mem`
``veo_read_mem``        :meth:`VeoProc.read_mem`
``veo_write_mem``       :meth:`VeoProc.write_mem`
``veo_context_open``    :meth:`VeoProc.open_context`
``veo_call_async``      :meth:`VeoContext.call_async`
``veo_call_wait_result``:meth:`VeoRequest.wait_result`
=====================  =============================================

All blocking calls drive the machine's simulator forward, so host-side
imperative code (the benchmarks, the HAM-Offload VH runtime) interleaves
naturally with VE-side simulation processes.
"""

from repro.veo.api import VeoLibraryHandle, VeoProc
from repro.veo.context import VeoContext
from repro.veo.request import RequestState, VeoRequest

__all__ = [
    "RequestState",
    "VeoContext",
    "VeoLibraryHandle",
    "VeoProc",
    "VeoRequest",
]
