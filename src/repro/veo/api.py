"""The VEO process handle — top of the VEO API.

:class:`VeoProc` mirrors ``veo_proc_create`` and the proc-scoped
operations (library loading, memory management, synchronous memory
transfers). Memory transfers go through the privileged DMA managed by
VEOS (:mod:`repro.veos.dma_manager`) — the expensive path the paper's
Sec. IV protocol works around.
"""

from __future__ import annotations

from typing import Any

from repro.errors import VeoProcError
from repro.hw.memory import MemoryRegion, PAGE_4K, PAGE_HUGE_2M
from repro.machine import AuroraMachine
from repro.veo.context import VeoContext
from repro.veos.loader import VeLibrary, VeSymbol

__all__ = ["VeoProc", "VeoLibraryHandle"]


class VeoLibraryHandle:
    """Handle to a library loaded into a VE process (``veo_load_library``)."""

    def __init__(self, proc: "VeoProc", library: VeLibrary) -> None:
        self.proc = proc
        self.library = library

    def get_symbol(self, name: str) -> VeSymbol:
        """Resolve a symbol by name (``veo_get_sym``)."""
        return self.proc.ve_process.find_symbol(self.library.name, name)


class VeoProc:
    """A VE process created through VEO (``veo_proc_create``).

    Creating the proc drives the simulation through the (large, one-off)
    process-creation time; all further blocking calls advance simulated
    time by their modeled cost.

    Parameters
    ----------
    machine:
        The simulated Aurora node.
    ve_index:
        Which VE to create the process on.
    """

    def __init__(self, machine: AuroraMachine, ve_index: int = 0) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.timing = machine.timing
        self.ve = machine.ve(ve_index)
        self.daemon = machine.daemon(ve_index)
        self._advance(self.timing.veos_proc_create_time)
        self.ve_process = self.daemon.create_process()
        self._contexts: list[VeoContext] = []
        self._alive = True

    # -- helpers -------------------------------------------------------------
    def _advance(self, duration: float) -> None:
        """Drive the simulator ``duration`` seconds forward (blocking op)."""
        self.sim.run(until=self.sim.now + duration)

    def _run(self, generator) -> Any:
        """Run a generator as a sim process to completion (blocking op)."""
        return self.sim.run(until=self.sim.process(generator))

    def _check_alive(self) -> None:
        if not self._alive:
            raise VeoProcError("VEO proc handle is destroyed")

    # -- libraries --------------------------------------------------------------
    def load_library(self, library: VeLibrary) -> VeoLibraryHandle:
        """Load a VE library image (``veo_load_library``)."""
        self._check_alive()
        self._advance(self.timing.veos_lib_load_time)
        self.ve_process.load_library(library)
        return VeoLibraryHandle(self, library)

    # -- memory -----------------------------------------------------------------
    def alloc_mem(self, size: int) -> int:
        """Allocate VE memory; returns the VE address (``veo_alloc_mem``)."""
        self._check_alive()
        return self.ve_process.malloc(size)

    def free_mem(self, addr: int) -> None:
        """Free VE memory (``veo_free_mem``)."""
        self._check_alive()
        self.ve_process.free(addr)

    def _transfer_proc(
        self,
        ve_addr: int,
        *,
        data: bytes | None = None,
        size: int | None = None,
        direction: str,
        huge_pages: bool = True,
    ):
        """Generator implementing one staged VEO memory transfer.

        Used by the blocking :meth:`write_mem`/:meth:`read_mem` and by the
        context's asynchronous transfer commands. Returns the bytes read
        for ``ve_to_vh``, ``None`` for ``vh_to_ve``.
        """
        page = PAGE_HUGE_2M if huge_pages else PAGE_4K
        staging = self.machine.vh.ddr
        nbytes = len(data) if direction == "vh_to_ve" else int(size or 0)
        alloc = staging.allocate(max(1, nbytes), page_size=page)
        try:
            if direction == "vh_to_ve":
                assert data is not None
                staging.write(alloc.addr, data)
                yield from self.daemon.dma_manager.transfer(
                    staging, alloc.addr, self.ve.hbm, ve_addr, nbytes,
                    direction="vh_to_ve", page_size=page,
                )
                return None
            yield from self.daemon.dma_manager.transfer(
                self.ve.hbm, ve_addr, staging, alloc.addr, nbytes,
                direction="ve_to_vh", page_size=page,
            )
            return staging.read(alloc.addr, nbytes)
        finally:
            staging.free(alloc)

    def write_mem(
        self, ve_addr: int, data: bytes, *, huge_pages: bool = True
    ) -> None:
        """Write host bytes into VE memory (``veo_write_mem``; blocking).

        The VH-side staging buffer's page size determines the DMA
        manager's per-page translation cost (the paper: use huge pages).
        """
        self._check_alive()
        self._run(
            self._transfer_proc(
                ve_addr, data=data, direction="vh_to_ve", huge_pages=huge_pages
            )
        )

    def read_mem(self, ve_addr: int, size: int, *, huge_pages: bool = True) -> bytes:
        """Read VE memory into host bytes (``veo_read_mem``; blocking)."""
        self._check_alive()
        return self._run(
            self._transfer_proc(
                ve_addr, size=size, direction="ve_to_vh", huge_pages=huge_pages
            )
        )

    def transfer_region(
        self,
        vh_region: MemoryRegion,
        vh_addr: int,
        ve_addr: int,
        size: int,
        *,
        direction: str,
        page_size: int = PAGE_HUGE_2M,
    ) -> None:
        """Zero-staging transfer between a VH region and VE memory.

        Used by benchmarks that reuse one persistent VH buffer (avoids
        re-staging Python bytes on every repetition).
        """
        self._check_alive()
        if direction == "vh_to_ve":
            src, src_addr, dst, dst_addr = vh_region, vh_addr, self.ve.hbm, ve_addr
        elif direction == "ve_to_vh":
            src, src_addr, dst, dst_addr = self.ve.hbm, ve_addr, vh_region, vh_addr
        else:
            raise ValueError(f"unknown direction {direction!r}")
        self._run(
            self.daemon.dma_manager.transfer(
                src, src_addr, dst, dst_addr, size,
                direction=direction, page_size=page_size,
            )
        )

    # -- execution -----------------------------------------------------------------
    def open_context(self) -> VeoContext:
        """Open a VEO thread context (``veo_context_open``)."""
        self._check_alive()
        self._advance(self.timing.veo_context_open_time)
        context = VeoContext(self)
        self._contexts.append(context)
        return context

    def start_server(self, symbol: VeSymbol, *args: Any):
        """Start a server symbol (e.g. ``ham_main``) on the VE.

        Returns the simulation process so callers can observe it; unlike
        :meth:`VeoContext.call_async` this does not go through a command
        queue — it models the asynchronous bootstrap call HAM-Offload
        performs once at startup (paper Sec. III-C).
        """
        self._check_alive()
        return self.ve_process.start_server(symbol, args)

    # -- teardown --------------------------------------------------------------------
    def destroy(self) -> None:
        """Terminate the VE process (``veo_proc_destroy``)."""
        if self._alive:
            self._alive = False
            for context in self._contexts:
                context.close()
            self.ve_process.destroy()
