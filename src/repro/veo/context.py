"""VEO thread contexts and the command queue.

A VEO context owns a FIFO command queue served by a worker on the VE: the
host enqueues ``call_async`` commands; each command pays the submit
latency (host → VEOS → VE wakeup), executes the function on the VE, then
pays the return latency before its request completes. The sum of those
two latencies plus host-side CPU overhead is what Fig. 9 measures as the
*native VEO offload cost* (~80 µs).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.errors import VeoProcError
from repro.sim import Store
from repro.veo.request import VeoRequest
from repro.veos.loader import VeSymbol

if TYPE_CHECKING:  # pragma: no cover
    from repro.veo.api import VeoProc

__all__ = ["VeoContext"]


class VeoContext:
    """One VEO thread context (``veo_thr_ctxt``)."""

    _ids = itertools.count(1)

    def __init__(self, proc: "VeoProc") -> None:
        self.proc = proc
        self.ctxt_id = next(self._ids)
        self._open = True
        self._queue = Store(proc.sim)
        self._reqid = itertools.count(1)
        self._worker = proc.sim.process(
            self._serve(), name=f"veo.ctx{self.ctxt_id}.worker"
        )

    @property
    def is_open(self) -> bool:
        """Whether the context accepts commands."""
        return self._open

    def call_async(self, symbol: VeSymbol, *args: Any) -> VeoRequest:
        """Enqueue an asynchronous function call (``veo_call_async``).

        Returns immediately with a request handle; the command executes
        in simulated time as the queue drains.
        """
        request = self._enqueue(("call", symbol, args), f"call {symbol.name}")
        return request

    def call_sync(self, symbol: VeSymbol, *args: Any) -> Any:
        """Convenience: ``call_async`` + ``wait_result``."""
        return self.call_async(symbol, *args).wait_result()

    def async_write_mem(self, ve_addr: int, data: bytes) -> VeoRequest:
        """Enqueue an asynchronous memory write (``veo_async_write_mem``).

        The transfer goes through the privileged DMA like
        :meth:`~repro.veo.api.VeoProc.write_mem`, but is issued from the
        context's command queue, so it can overlap with host work and
        other queued commands' VE execution.
        """
        return self._enqueue(("write", ve_addr, bytes(data)), "async_write_mem")

    def async_read_mem(self, ve_addr: int, size: int) -> VeoRequest:
        """Enqueue an asynchronous memory read (``veo_async_read_mem``).

        The request's result is the ``bytes`` read from VE memory.
        """
        return self._enqueue(("read", ve_addr, size), "async_read_mem")

    def _enqueue(self, command: tuple, label: str) -> VeoRequest:
        if not self._open:
            raise VeoProcError(f"context {self.ctxt_id} is closed")
        request = VeoRequest(self.proc.sim, next(self._reqid), label=label)
        self._queue.put((request, command))
        return request

    def _serve(self):
        """VE-side worker process draining the command queue."""
        sim = self.proc.sim
        timing = self.proc.timing
        upi = self.proc.ve.link.upi_hops
        while True:
            request, command = yield self._queue.get()
            try:
                if command[0] == "call":
                    _kind, symbol, args = command
                    # Host-side argument marshalling.
                    yield sim.timeout(timing.veo_call_cpu_overhead)
                    # Submission: queue, VEOS, VE wakeup (+UPI if remote).
                    yield sim.timeout(
                        timing.veo_call_submit_latency + upi * timing.upi_penalty
                    )
                    value = yield from self.proc.ve_process.run_function(symbol, args)
                    yield sim.timeout(
                        timing.veo_call_return_latency + upi * timing.upi_penalty
                    )
                elif command[0] == "write":
                    _kind, ve_addr, data = command
                    value = yield from self.proc._transfer_proc(
                        ve_addr, data=data, direction="vh_to_ve"
                    )
                elif command[0] == "read":
                    _kind, ve_addr, size = command
                    value = yield from self.proc._transfer_proc(
                        ve_addr, size=size, direction="ve_to_vh"
                    )
                else:  # pragma: no cover - defensive
                    raise VeoProcError(f"unknown command kind {command[0]!r}")
            except Exception as exc:  # noqa: BLE001 - VE-side failure
                request._fail(exc)
                continue
            request._complete(value)

    def close(self) -> None:
        """Close the context (``veo_context_close``)."""
        if self._open:
            self._open = False
            if self._worker.is_alive:
                self._worker.interrupt("context closed")
