"""Example workloads built on the HAM-Offload API.

``kernels``
    Offloadable numerical kernels (inner product, daxpy, dgemm, Jacobi)
    with both real numpy implementations and roofline cost descriptors
    for the timed backends.
``loadbalance``
    Dynamic host+target load balancing in the style the paper cites for
    HAM-Offload applications (Malý et al.: FETI solvers keeping both the
    CPU and the coprocessors busy).
``pipeline``
    Double-buffered offloading: overlap of communication and computation,
    the property the paper's one-sided protocols enable (Sec. III-D).
"""

from repro.workloads.kernels import (
    KERNELS,
    OffloadKernel,
    daxpy,
    dgemm,
    inner_product,
    jacobi_sweep,
)
from repro.workloads.loadbalance import BalanceResult, run_balanced
from repro.workloads.pipeline import PipelineResult, pipelined_map

__all__ = [
    "BalanceResult",
    "KERNELS",
    "PipelineResult",
    "OffloadKernel",
    "daxpy",
    "dgemm",
    "inner_product",
    "jacobi_sweep",
    "pipelined_map",
    "run_balanced",
]
