"""Dynamic host + target load balancing.

The paper's application context (Sec. II): Malý et al. used HAM-Offload's
low overhead "to implement a simple load-balancing strategy to
efficiently utilise both the host CPU and the available coprocessors".
This module reproduces that pattern: a queue of independent tasks is
drained greedily, each target keeping up to ``depth`` offloads in flight
(so targets never starve while the host works a task of its own), the
host working tasks itself between refills.

The scheduler is backend-agnostic. Host-side task execution is abstracted
as a callable so that:

* on the **wall-clock** backends it really computes (e.g. numpy);
* on the **simulated** backends it advances simulated time by the
  roofline cost (``backend._advance``), making makespans directly
  comparable across protocols.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.offload.future import Future
from repro.offload.runtime import Runtime

__all__ = ["BalanceResult", "run_balanced"]


@dataclass
class BalanceResult:
    """Outcome of one load-balanced run.

    ``makespan`` is in the backend's time domain (simulated seconds for
    the timed backends, wall seconds otherwise).
    """

    host_tasks: int = 0
    target_tasks: dict[int, int] = field(default_factory=dict)
    makespan: float = 0.0
    results: list[Any] = field(default_factory=list)

    @property
    def total_tasks(self) -> int:
        """All tasks executed."""
        return self.host_tasks + sum(self.target_tasks.values())


def run_balanced(
    runtime: Runtime,
    tasks: Sequence[Any],
    *,
    make_functor: Callable[[Any], Any],
    host_execute: Callable[[Any], Any],
    now: Callable[[], float],
    use_host: bool = True,
    depth: int = 2,
) -> BalanceResult:
    """Drain ``tasks`` across the host and every target of ``runtime``.

    Parameters
    ----------
    runtime:
        The HAM-Offload runtime (any backend).
    tasks:
        Opaque task descriptors.
    make_functor:
        Builds the offload functor for a task (``f2f(...)``).
    host_execute:
        Runs a task on the host, returning its result.
    now:
        Clock in the backend's time domain (``lambda: backend.sim.now``
        or ``time.perf_counter``).
    use_host:
        If false, the host only coordinates (offload-everything mode).
    depth:
        Offloads kept in flight per target; > 1 keeps targets busy while
        the host executes a task of its own.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    result = BalanceResult(target_tasks={t: 0 for t in runtime.targets()})
    queue = deque(tasks)
    in_flight: dict[int, deque[Future]] = {t: deque() for t in runtime.targets()}
    start = now()

    def reap(blocking_target: int | None = None) -> None:
        """Collect finished offloads; optionally block on one target's oldest."""
        for target, pending in in_flight.items():
            while pending:
                future = pending[0]
                if target == blocking_target or future.test():
                    result.results.append(future.get())
                    result.target_tasks[target] += 1
                    pending.popleft()
                    blocking_target = None  # only block once
                else:
                    break

    def refill() -> None:
        for target, pending in in_flight.items():
            while queue and len(pending) < depth:
                pending.append(runtime.async_(target, make_functor(queue.popleft())))

    while queue or any(in_flight.values()):
        refill()
        if use_host and queue:
            task = queue.popleft()
            result.results.append(host_execute(task))
            result.host_tasks += 1
            reap()
        elif any(in_flight.values()):
            # Nothing left for the host: block on the busiest target.
            target = max(in_flight, key=lambda t: len(in_flight[t]))
            reap(blocking_target=target)
    result.makespan = now() - start
    return result
