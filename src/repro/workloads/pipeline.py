"""Double-buffered offload pipelines.

The paper's one-sided protocols let "the VH write messages via PCIe into
the VE memory while the VE is executing a previously received active
message in parallel — thus enabling overlap of communication and
computation" (Sec. III-D). This module exercises that: a stream of data
chunks is processed with two target buffers, staging chunk *i+1* while
chunk *i* executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.ham.functor import Functor
from repro.offload.buffer import BufferPtr
from repro.offload.runtime import Runtime

__all__ = ["PipelineResult", "pipelined_map"]


@dataclass
class PipelineResult:
    """Outcome of one pipelined run."""

    results: list[Any] = field(default_factory=list)
    chunks: int = 0
    elapsed: float = 0.0


def pipelined_map(
    runtime: Runtime,
    target: int,
    chunks: Sequence[np.ndarray],
    make_functor: Callable[[BufferPtr, int], Functor],
    *,
    now: Callable[[], float],
    depth: int = 2,
) -> PipelineResult:
    """Apply an offloaded kernel to every chunk with ``depth`` buffers.

    For each chunk: ``put`` into a rotating target buffer, launch the
    kernel asynchronously, and only synchronize ``depth`` steps later —
    the classic software pipeline.

    ``make_functor(ptr, n)`` builds the offload for one staged chunk.
    """
    if depth < 1:
        raise ValueError(f"pipeline depth must be >= 1, got {depth}")
    if not chunks:
        return PipelineResult()
    dtype = chunks[0].dtype
    max_len = max(c.size for c in chunks)
    buffers = [runtime.allocate(target, max_len, dtype) for _ in range(depth)]
    in_flight: list[Any] = []
    result = PipelineResult()
    start = now()
    try:
        for index, chunk in enumerate(chunks):
            slot = index % depth
            if len(in_flight) >= depth:
                # The buffer is about to be reused: drain its offload.
                result.results.append(in_flight.pop(0).get())
            runtime.put(chunk, buffers[slot], count=chunk.size)
            future = runtime.async_(target, make_functor(buffers[slot], chunk.size))
            in_flight.append(future)
        while in_flight:
            result.results.append(in_flight.pop(0).get())
    finally:
        for buffer in buffers:
            runtime.free(buffer)
    result.chunks = len(chunks)
    result.elapsed = now() - start
    return result
