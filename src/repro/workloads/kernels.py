"""Offloadable numerical kernels.

Each kernel exists twice, deliberately:

* as an :func:`~repro.ham.offloadable` **function** operating on real
  numpy data (buffer-pointer arguments arrive as live views of target
  memory), so results are bit-for-bit checkable on every backend;
* as a **cost descriptor** (:class:`OffloadKernel`), giving the roofline
  model flop/byte counts so the timed backends can charge realistic VE
  compute time via ``kernel_cost_fn``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ham import offloadable
from repro.hw.roofline import DeviceModel, KernelCost

__all__ = [
    "KERNELS",
    "OffloadKernel",
    "daxpy",
    "dgemm",
    "inner_product",
    "intermittent_straggler",
    "jacobi_sweep",
    "sleep_kernel",
]


# -- offloadable functions (real numpy semantics) ----------------------------


@offloadable
def inner_product(a, b, n: int) -> float:
    """Dot product of the first ``n`` elements (the paper's Fig. 2 kernel)."""
    return float(np.dot(np.asarray(a)[:n], np.asarray(b)[:n]))


@offloadable
def daxpy(alpha: float, x, y) -> int:
    """``y := alpha * x + y`` in place; returns the element count."""
    xv, yv = np.asarray(x), np.asarray(y)
    yv += alpha * xv
    return int(yv.size)


@offloadable
def dgemm(a, b, c, n: int) -> int:
    """``C := A @ B`` for square n×n matrices stored flat; returns n."""
    av = np.asarray(a)[: n * n].reshape(n, n)
    bv = np.asarray(b)[: n * n].reshape(n, n)
    cv = np.asarray(c)[: n * n].reshape(n, n)
    np.matmul(av, bv, out=cv)
    return n


@offloadable
def jacobi_sweep(grid, scratch, n: int) -> float:
    """One Jacobi relaxation sweep on an n×n grid; returns the residual.

    ``grid`` holds the current iterate, ``scratch`` receives the update;
    the caller swaps pointers between sweeps (classic double buffering).
    """
    u = np.asarray(grid)[: n * n].reshape(n, n)
    v = np.asarray(scratch)[: n * n].reshape(n, n)
    v[:] = u
    v[1:-1, 1:-1] = 0.25 * (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
    )
    return float(np.abs(v - u).max())


@offloadable
def sleep_kernel(seconds: float) -> float:
    """Pure-latency kernel: sleep for ``seconds``, return ``seconds``.

    ``time.sleep`` releases the GIL, so concurrent executions on a
    worker pool overlap fully — a stand-in for a fixed-duration device
    kernel in pipelining benchmarks, where throughput (not compute)
    is the quantity under test.
    """
    time.sleep(seconds)
    return float(seconds)


#: Per-target-process call counter behind intermittent_straggler. The
#: state lives in the *executing* process (each forked server keeps its
#: own), so straggles are a property of the target, not the arguments —
#: the hedge duplicate posted to a different node does not inherit the
#: primary's straggle.
_straggler_calls = {"count": 0}
_straggler_lock = threading.Lock()


@offloadable
def intermittent_straggler(
    base: float, straggle: float, every: int, value: float
) -> float:
    """Latency kernel whose every ``every``-th call on a target straggles.

    Sleeps ``base`` seconds normally and ``straggle`` seconds on each
    ``every``-th call of the executing process — a deterministic stand-in
    for the occasional GC pause / page fault / contended device of the
    Tail at Scale problem statement. Idempotent and location-free by
    construction, so it is hedgeable; ``every`` directly bounds the
    steady-state hedge duplicate rate near ``1 / every``.
    """
    with _straggler_lock:
        _straggler_calls["count"] += 1
        slow = _straggler_calls["count"] % every == 0
    time.sleep(straggle if slow else base)
    return float(value)


# -- cost descriptors ----------------------------------------------------------


@dataclass(frozen=True)
class OffloadKernel:
    """A kernel's identity plus its roofline cost as a function of size.

    ``cost(n)`` maps the kernel's size parameter to flop/byte counts;
    ``ve_time``/``vh_time`` evaluate the roofline on a device model.
    """

    name: str
    fn: Callable
    cost: Callable[[int], KernelCost]

    def time_on(self, device: DeviceModel, n: int) -> float:
        """Roofline execution time for size ``n`` on ``device``."""
        return device.kernel_time(self.cost(n))


def _inner_product_cost(n: int) -> KernelCost:
    return KernelCost(flops=2.0 * n, bytes_moved=16.0 * n)


def _daxpy_cost(n: int) -> KernelCost:
    return KernelCost(flops=2.0 * n, bytes_moved=24.0 * n)


def _dgemm_cost(n: int) -> KernelCost:
    return KernelCost(flops=2.0 * n**3, bytes_moved=32.0 * n**2)


def _jacobi_cost(n: int) -> KernelCost:
    return KernelCost(flops=4.0 * n**2, bytes_moved=48.0 * n**2)


#: Registry of kernels with cost models, keyed by name.
KERNELS: dict[str, OffloadKernel] = {
    "inner_product": OffloadKernel("inner_product", inner_product, _inner_product_cost),
    "daxpy": OffloadKernel("daxpy", daxpy, _daxpy_cost),
    "dgemm": OffloadKernel("dgemm", dgemm, _dgemm_cost),
    "jacobi": OffloadKernel("jacobi", jacobi_sweep, _jacobi_cost),
}
