"""Head-based trace sampling plus tail-based retention.

Recording every span of every offload is what PRs 2–4 needed to *build*
the trace model, but it is exactly what a production offload path cannot
afford. This module splits the decision in two, mirroring how OTel-style
collectors do it:

* **Head sampling** (:class:`HeadSampler`): at trace mint time, a
  trace-id-consistent coin flip marks the context ``sampled`` or not.
  The decision is a pure function of the trace id's low 64 bits, so any
  process seeing the same id — the VH runtime, the forked TCP server —
  agrees without coordination; the bit travels in the v2 active-message
  header's flag byte.
* **Tail retention** (:class:`TailPipeline`): unsampled traces are not
  simply discarded. Their spans are *staged* in a bounded side table
  keyed by trace id; when the offload completes, the pipeline folds the
  staged spans into the aggregate histograms and then decides: traces
  that errored or ran slower than the rolling p99 are promoted into the
  recorder ring as if they had been sampled (outliers are never lost),
  everything else is dropped after the fold (fast paths cost aggregates
  only).

:func:`complete_offload` is the single completion hook the runtime
calls for every finished offload — it feeds the per-kernel profiler,
the SLO monitor and the tail pipeline, sampled or not.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.telemetry import context as trace_context
from repro.telemetry.metrics import percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.recorder import EventRecord, Recorder, SpanRecord

__all__ = ["HeadSampler", "TailPipeline", "complete_offload"]

_ID_MASK = (1 << 64) - 1


class HeadSampler:
    """Trace-id-consistent probabilistic sampler.

    ``rate`` is the fraction of traces recorded at the head (0.0 — none,
    1.0 — all). The decision compares the trace id's low 64 bits against
    ``rate * 2**64``: ids are uniform random, so the hit rate converges
    to ``rate``, and every process evaluating the same id reaches the
    same verdict — no coordination, no extra header field.
    """

    __slots__ = ("rate", "_threshold")

    def __init__(self, rate: float) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._threshold = round(rate * float(_ID_MASK + 1))

    def decide(self, trace_id: int) -> bool:
        if self._threshold > _ID_MASK:
            return True
        return (trace_id & _ID_MASK) < self._threshold

    def new_trace(self) -> trace_context.TraceContext:
        """Mint a root context carrying this sampler's verdict."""
        ctx = trace_context.new_trace()
        if not self.decide(ctx.trace_id):
            ctx = replace(ctx, sampled=False)
        return ctx


class TailPipeline:
    """Bounded stage-then-decide store for unsampled traces.

    Parameters
    ----------
    max_pending:
        Maximum traces staged at once; the oldest is evicted (its spans
        were already folded into aggregates at stage time) when a new
        trace would exceed it. Bounds memory against leaked futures or a
        forked process that inherits the table.
    max_records_per_trace:
        Per-trace staging cap; beyond it further records are dropped and
        counted.
    window:
        Rolling window of recent round-trip durations (sampled and
        unsampled) from which the slow-outlier threshold is computed.
    min_samples:
        Completions required before the p99 threshold is trusted; until
        then only errored traces are retained.
    tail_percentile:
        Retention threshold percentile of the rolling window (99.0 —
        "slower than p99 of recent traffic is an outlier").
    """

    def __init__(
        self,
        *,
        max_pending: int = 256,
        max_records_per_trace: int = 128,
        window: int = 512,
        min_samples: int = 20,
        tail_percentile: float = 99.0,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        if not 0.0 < tail_percentile <= 100.0:
            raise ValueError(
                f"tail_percentile must be in (0, 100], got {tail_percentile}"
            )
        self.max_pending = max_pending
        self.max_records_per_trace = max_records_per_trace
        self.min_samples = max(1, min_samples)
        self.tail_percentile = tail_percentile
        self._lock = threading.Lock()
        self._pending: dict[str, list[Any]] = {}
        self._durations: list[float] = []
        self._window = max(self.min_samples, window)
        # Sorting the whole window per completion would dominate the
        # unsampled fast path, so the percentile is cached and refreshed
        # every window/16 completions — tail thresholds track traffic
        # shifts within a few dozen operations, which is all they need.
        self._threshold_refresh = max(1, self._window // 16)
        self._threshold_stale = self._threshold_refresh
        self._threshold_cache: float | None = None
        self.staged = 0
        self.evicted = 0
        self.overflowed = 0

    # -- staging -----------------------------------------------------------
    def stage(self, record: "SpanRecord | EventRecord") -> None:
        """Hold one unsampled record pending the completion verdict.

        The caller (the recorder) has already folded the record into the
        aggregate histograms, so eviction loses detail, never data.
        """
        trace_id = record.trace_id
        if not trace_id:
            return
        with self._lock:
            staged = self._pending.get(trace_id)
            if staged is None:
                while len(self._pending) >= self.max_pending:
                    evicted_id = next(iter(self._pending))
                    del self._pending[evicted_id]
                    self.evicted += 1
                staged = self._pending[trace_id] = []
            if len(staged) >= self.max_records_per_trace:
                self.overflowed += 1
                return
            staged.append(record)
            self.staged += 1

    # -- completion --------------------------------------------------------
    def _tail_threshold_locked(self) -> float | None:
        if len(self._durations) < self.min_samples:
            return None
        if (self._threshold_cache is None
                or self._threshold_stale >= self._threshold_refresh):
            self._threshold_cache = percentile(
                self._durations, self.tail_percentile
            )
            self._threshold_stale = 0
        return self._threshold_cache

    def complete(
        self,
        recorder: "Recorder",
        ctx: trace_context.TraceContext,
        *,
        duration_ns: int,
        error: bool = False,
        kernel: str = "",
    ) -> bool:
        """Settle one finished offload; returns True if spans survive.

        Sampled traces only feed the rolling duration window (their
        spans already live in the ring). Unsampled traces pop their
        staged records, attribute their phase durations to ``kernel``'s
        profile, and are promoted into the ring when errored or slower
        than the window's tail threshold, dropped otherwise.
        """
        duration = float(duration_ns)
        with self._lock:
            threshold = self._tail_threshold_locked()
            self._durations.append(duration)
            self._threshold_stale += 1
            if len(self._durations) > self._window:
                del self._durations[: len(self._durations) - self._window]
            staged = self._pending.pop(ctx.trace_id_hex, None)
        if ctx.sampled:
            return True
        if staged is None:
            return False
        if kernel:
            for record in staged:
                if record.kind == "span":
                    recorder.profiles.record_phase(
                        kernel, record.name, record.duration_ns
                    )
        slow = threshold is not None and duration > threshold
        if not (error or slow):
            recorder.metrics.counter("trace.tail_dropped").inc()
            return False
        recorder.ingest(staged)
        recorder.metrics.counter("trace.tail_retained").inc()
        if error:
            recorder.metrics.counter("trace.tail_retained_error").inc()
        if slow:
            recorder.metrics.counter("trace.tail_retained_slow").inc()
        return True

    def pending_traces(self) -> int:
        with self._lock:
            return len(self._pending)

    def clear(self) -> None:
        """Drop all staged records and the rolling window (fork/tests)."""
        with self._lock:
            self._pending.clear()
            self._durations.clear()
            self._threshold_cache = None
            self._threshold_stale = self._threshold_refresh


def complete_offload(
    ctx: trace_context.TraceContext | None,
    *,
    kernel: str,
    duration_ns: int,
    error: bool = False,
    recorder: "Recorder | None" = None,
    tenant: str | None = None,
    node: int | None = None,
) -> None:
    """Fold one finished offload into every aggregate consumer.

    Called by the runtime/future layer exactly once per completed
    offload (sampled or not): per-kernel profile, SLO windows, and the
    tail pipeline's keep/drop verdict. A no-op while telemetry is off.
    ``tenant`` (when the QoS layer tagged the offload) routes the
    observation into that tenant's own SLO windows as well. ``node``
    (the target the invocation was posted to) additionally feeds the
    per-target ``target.reply.<node>`` histogram and
    ``target.errors.<node>`` counter — but only while a TSDB is
    installed, so the per-target cardinality is paid exactly when the
    scoreboard consuming it exists.
    """
    if recorder is None:
        from repro.telemetry import recorder as recorder_mod

        recorder = recorder_mod.get()
    if recorder is None:
        return
    recorder.profiles.record(kernel or "<anonymous>", duration_ns, error=error)
    if node is not None and getattr(recorder, "tsdb", None) is not None:
        recorder.metrics.log_histogram(f"target.reply.{node}").observe(
            duration_ns / 1e9
        )
        if error:
            recorder.metrics.counter(f"target.errors.{node}").inc()
    if recorder.slo is not None:
        recorder.slo.observe("offload", duration_ns, error=error,
                             tenant=tenant)
    pipeline = recorder.pipeline
    if pipeline is not None and ctx is not None:
        pipeline.complete(recorder, ctx, duration_ns=duration_ns, error=error,
                          kernel=kernel)
