"""Human-readable trace summary — ``python -m repro.telemetry.report``.

Reads a trace produced by the exporters (Chrome ``trace_event`` JSON or
flat JSONL, auto-detected) and prints per-phase latency percentiles::

    python -m repro.telemetry.report trace.json
    python -m repro.telemetry.report trace.jsonl --prefix offload.

The table covers every span name (one row per phase: serialize,
enqueue, transport, execute, reply, deserialize, ...), with count,
p50/p95, mean and total time, plus the trace's instantaneous events
(faults, retries, health transitions) grouped by name.
"""

from __future__ import annotations

import argparse
from collections import Counter as _TallyCounter
from typing import Sequence

from repro.bench.tables import format_time, render_table
from repro.telemetry.export import Record, durations_by_name, load_any
from repro.telemetry.metrics import percentile

__all__ = ["main", "render_report", "summarize"]


def summarize(
    records: Sequence[Record], prefix: str = ""
) -> dict[str, dict[str, float]]:
    """Per-span-name latency summary: count, p50, p95, mean, total.

    Times are seconds. ``prefix`` filters span names (e.g. ``offload.``).
    """
    summary: dict[str, dict[str, float]] = {}
    for name, durations in sorted(durations_by_name(records, prefix).items()):
        total = sum(durations)
        summary[name] = {
            "count": len(durations),
            "p50": percentile(durations, 50),
            "p95": percentile(durations, 95),
            "mean": total / len(durations),
            "total": total,
        }
    return summary


def render_report(records: Sequence[Record], prefix: str = "") -> str:
    """Render the span-percentile table plus an event tally."""
    summary = summarize(records, prefix)
    if not summary:
        span_table = "no spans matched" + (f" prefix {prefix!r}" if prefix else "")
    else:
        rows = [
            {
                "phase": name,
                "count": stats["count"],
                "p50": format_time(stats["p50"]),
                "p95": format_time(stats["p95"]),
                "mean": format_time(stats["mean"]),
                "total": format_time(stats["total"]),
            }
            for name, stats in summary.items()
        ]
        span_table = render_table(rows, title="span latencies per phase")
    tally: _TallyCounter[str] = _TallyCounter(
        r.name for r in records if r.kind == "event"
    )
    if not tally:
        return span_table
    event_rows = [
        {"event": name, "count": count} for name, count in sorted(tally.items())
    ]
    return span_table + "\n\n" + render_table(event_rows, title="events")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-telemetry-report",
        description="Summarize a telemetry trace (Chrome JSON or JSONL): "
        "per-phase latency percentiles and event tallies.",
    )
    parser.add_argument("trace", help="trace file written by repro.telemetry.export")
    parser.add_argument(
        "--prefix", default="",
        help="only summarize spans whose name starts with this prefix",
    )
    args = parser.parse_args(argv)
    try:
        records = load_any(args.trace)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot load {args.trace!r}: {exc}")
    print(render_report(records, args.prefix))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
