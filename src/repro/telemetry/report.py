"""Human-readable trace summary — ``python -m repro.telemetry.report``.

Reads a trace produced by the exporters (Chrome ``trace_event`` JSON or
flat JSONL, auto-detected) and prints per-phase latency percentiles::

    python -m repro.telemetry.report trace.json
    python -m repro.telemetry.report trace.jsonl --prefix offload.
    python -m repro.telemetry.report trace.json --per-message
    python -m repro.telemetry.report trace.json --critical-path
    python -m repro.telemetry.report trace.json --profile
    python -m repro.telemetry.report trace.json --format json

Passing a *directory* reads it as a flight-recorder crash bundle
(see :mod:`repro.telemetry.flightrecorder`) instead: the manifest, the
in-flight table at dump time, and a tally of the recorded control-plane
events::

    python -m repro.telemetry.report /var/crash/repro/crash-1234-1-node_down

The default table covers every span name (one row per phase: serialize,
enqueue, transport, execute, reply, deserialize, ...), with count,
p50/p95, mean and total time, plus the trace's instantaneous events
(faults, retries, health transitions) grouped by name.

``--per-message`` groups the records by distributed ``trace_id`` (one
row per offload, across processes); ``--critical-path`` prints each
message's exact phase-by-phase timeline, including the uncovered
``(wait)`` stretches where the wire time lives. ``--profile``
reconstructs per-kernel continuous profiles from the trace and ranks
kernels by total (or, with ``--profile-sort tail``, p99) round-trip
time. ``--format json`` emits the same data machine-readably.
"""

from __future__ import annotations

import argparse
import json
import time as _time
from collections import Counter as _TallyCounter
from pathlib import Path
from typing import Any, Sequence

from repro.bench.tables import format_time, render_table
from repro.telemetry import flightrecorder
from repro.telemetry.distributed import group_by_trace, trace_summary
from repro.telemetry.export import (
    Record,
    dicts_to_records,
    durations_by_name,
    load_any,
)
from repro.telemetry.metrics import percentile
from repro.telemetry.profile import KernelProfiler, render_profile_table

__all__ = [
    "main",
    "profile_from_records",
    "render_bundle",
    "render_critical_paths",
    "render_per_message",
    "render_profile",
    "render_report",
    "summarize",
]


def summarize(
    records: Sequence[Record], prefix: str = ""
) -> dict[str, dict[str, float]]:
    """Per-span-name latency summary: count, p50, p95, mean, total.

    Times are seconds. ``prefix`` filters span names (e.g. ``offload.``).
    """
    summary: dict[str, dict[str, float]] = {}
    for name, durations in sorted(durations_by_name(records, prefix).items()):
        total = sum(durations)
        summary[name] = {
            "count": len(durations),
            "p50": percentile(durations, 50),
            "p95": percentile(durations, 95),
            "mean": total / len(durations),
            "total": total,
        }
    return summary


def render_report(records: Sequence[Record], prefix: str = "") -> str:
    """Render the span-percentile table plus an event tally."""
    summary = summarize(records, prefix)
    if not summary:
        span_table = "no spans matched" + (f" prefix {prefix!r}" if prefix else "")
    else:
        rows = [
            {
                "phase": name,
                "count": stats["count"],
                "p50": format_time(stats["p50"]),
                "p95": format_time(stats["p95"]),
                "mean": format_time(stats["mean"]),
                "total": format_time(stats["total"]),
            }
            for name, stats in summary.items()
        ]
        span_table = render_table(rows, title="span latencies per phase")
    tally: _TallyCounter[str] = _TallyCounter(
        r.name for r in records if r.kind == "event"
    )
    if not tally:
        return span_table
    event_rows = [
        {"event": name, "count": count} for name, count in sorted(tally.items())
    ]
    return span_table + "\n\n" + render_table(event_rows, title="events")


def per_message_summaries(records: Sequence[Record]) -> list[dict[str, Any]]:
    """One digest per distributed trace, ordered by first timestamp."""
    groups = group_by_trace(records)
    summaries = [trace_summary(group) for group in groups.values()]
    summaries.sort(key=lambda s: min(
        (seg["start_ns"] for seg in s["critical_path"]), default=0
    ))
    return summaries


def render_per_message(records: Sequence[Record]) -> str:
    """Table with one row per distributed trace (= one offload)."""
    summaries = per_message_summaries(records)
    if not summaries:
        return "no traced messages (records carry no trace_id)"
    rows = [
        {
            "trace": summary["trace_id"][:16],
            "spans": summary["spans"],
            "events": summary["events"],
            "pids": "+".join(str(pid) for pid in summary["pids"]),
            "total": format_time(summary["total_ns"] / 1e9),
        }
        for summary in summaries
    ]
    return render_table(rows, title="per-message traces")


def render_critical_paths(records: Sequence[Record]) -> str:
    """Phase-by-phase breakdown of every distributed trace."""
    summaries = per_message_summaries(records)
    if not summaries:
        return "no traced messages (records carry no trace_id)"
    blocks: list[str] = []
    for summary in summaries:
        total = summary["total_ns"]
        rows = []
        for segment in summary["critical_path"]:
            duration = segment["duration_ns"]
            rows.append({
                "phase": segment["phase"],
                "pid": segment["pid"] or "-",
                "time": format_time(duration / 1e9),
                "share": f"{100.0 * duration / total:.1f}%" if total else "-",
            })
        blocks.append(render_table(
            rows,
            title=f"critical path {summary['trace_id'][:16]} "
                  f"(total {format_time(total / 1e9)})",
        ))
    return "\n\n".join(blocks)


def profile_from_records(records: Sequence[Record]) -> dict[str, Any]:
    """Reconstruct per-kernel profiles from a trace file's records.

    The live system folds completions into
    :class:`~repro.telemetry.profile.KernelProfiler` as they happen;
    offline, the same aggregation is rebuilt per distributed trace: the
    kernel name comes from the ``offload.serialize`` span's ``functor``
    attribute (falling back to the execute span's ``handler``), the
    round trip is the trace's wall extent, and every span feeds its
    phase histogram. Untraced records (no ``trace_id``) contribute
    nothing — they cannot be attributed to a kernel.

    Each kernel summary also carries an ``exemplar``: the trace id and
    round-trip time of that kernel's *slowest* observed offload, so the
    percentile row links straight to one concrete trace the operator
    can pull from the file (mirroring the OpenMetrics bucket exemplars
    on the live ``/metrics`` endpoint).
    """
    profiler = KernelProfiler()
    slowest: dict[str, tuple[int, str]] = {}
    for trace_id, group in group_by_trace(records).items():
        spans = [r for r in group if r.kind == "span"]
        if not spans:
            continue
        kernel = ""
        nbytes = 0
        error = False
        for span in spans:
            if not kernel and span.name == "offload.serialize":
                kernel = str(span.attrs.get("functor", ""))
                nbytes = int(span.attrs.get("bytes", 0) or 0)
            if not kernel and span.name == "offload.execute":
                kernel = str(span.attrs.get("handler", ""))
            if "error" in span.attrs:
                error = True
        kernel = kernel or "<unknown>"
        total_ns = max(s.end_ns for s in spans) - min(s.start_ns for s in spans)
        profiler.record(kernel, total_ns, error=error)
        if nbytes:
            profiler.add_bytes(kernel, nbytes)
        for span in spans:
            profiler.record_phase(kernel, span.name, span.duration_ns)
        if trace_id and total_ns >= slowest.get(kernel, (-1, ""))[0]:
            slowest[kernel] = (total_ns, str(trace_id))
    snapshot = profiler.snapshot()
    for kernel, (total_ns, trace_id) in slowest.items():
        snapshot[kernel]["exemplar"] = {
            "trace_id": trace_id, "total_ns": total_ns,
        }
    return snapshot


def render_profile(records: Sequence[Record], sort_by: str = "total") -> str:
    """The ``--profile`` view: kernels ranked by total or tail time."""
    return render_profile_table(profile_from_records(records), sort_by=sort_by)


def render_bundle(bundle: dict[str, Any]) -> str:
    """Render a loaded crash bundle: manifest, in-flight table, events.

    ``bundle`` is the dict from
    :func:`repro.telemetry.flightrecorder.load_bundle`. The recent
    control-plane events reuse the standard event-tally rendering; the
    last few events are listed verbatim — in a post-mortem, the final
    seconds matter more than the aggregate.
    """
    manifest = bundle.get("manifest") or {}
    when = manifest.get("time_ns")
    stamp = (
        _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(when / 1e9))
        if isinstance(when, (int, float)) and when else "?"
    )
    lines = [
        f"crash bundle: reason={manifest.get('reason', '?')} "
        f"pid={manifest.get('pid', '?')} at {stamp}",
        f"  events retained {manifest.get('events', 0)} "
        f"(noted {manifest.get('noted', 0)}, "
        f"dropped {manifest.get('dropped', 0)}, "
        f"suppressed triggers {manifest.get('suppressed_triggers', 0)})",
        f"  offloads pending at dump: {manifest.get('pending', 0)}",
    ]
    if manifest.get("attrs"):
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(manifest["attrs"].items())
        )
        lines.append(f"  trigger attrs: {attrs}")
    if bundle.get("skipped_lines"):
        lines.append(
            f"  ({bundle['skipped_lines']} truncated event line(s) skipped)"
        )
    for entry in bundle.get("inflight") or []:
        if "error" in entry:
            lines.append(f"  in flight: <{entry['error']}>")
            continue
        corrs = entry.get("correlation_ids") or []
        shown = ", ".join(str(corr) for corr in corrs[:8])
        if len(corrs) > 8:
            shown += ", ..."
        lines.append(
            f"  in flight: {entry.get('in_flight', 0)}/"
            f"{entry.get('limit', 0)} on {entry.get('backend', '?')}"
            + (f"  [{shown}]" if shown else "")
        )
    events = bundle.get("events") or []
    if not events:
        lines.append("\nno recorded events")
        return "\n".join(lines)
    records = dicts_to_records(events)
    tail = [
        f"  {row.get('name', '?')} "
        + " ".join(
            f"{key}={value}"
            for key, value in sorted((row.get("attrs") or {}).items())
        )
        for row in events[-10:]
    ]
    return "\n".join(
        lines
        + ["", render_report(records), "", "last events:"]
        + tail
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-telemetry-report",
        description="Summarize a telemetry trace (Chrome JSON or JSONL): "
        "per-phase latency percentiles and event tallies.",
    )
    parser.add_argument("trace", help="trace file written by repro.telemetry.export")
    parser.add_argument(
        "--prefix", default="",
        help="only summarize spans whose name starts with this prefix",
    )
    parser.add_argument(
        "--per-message", action="store_true",
        help="group by distributed trace_id: one row per offload",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="per-message phase-by-phase timeline (implies trace grouping)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="per-kernel continuous profile reconstructed from the trace",
    )
    parser.add_argument(
        "--profile-sort", choices=("total", "tail"), default="total",
        help="rank --profile kernels by cumulative time or p99 (default: total)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    args = parser.parse_args(argv)
    path = Path(args.trace)
    if path.is_dir():
        try:
            bundle = flightrecorder.load_bundle(path)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load crash bundle {args.trace!r}: {exc}")
        if args.format == "json":
            print(json.dumps(bundle, indent=2, sort_keys=True, default=str))
        else:
            print(render_bundle(bundle))
        return 0
    try:
        records = load_any(args.trace)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot load {args.trace!r}: {exc}")
    if not records:
        # An empty trace is a fact worth one line, not a crash: report
        # it and exit cleanly so pipelines can treat it as "nothing ran".
        print("no records")
        return 0
    if args.format == "json":
        payload: dict[str, Any] = {"phases": summarize(records, args.prefix)}
        if args.per_message or args.critical_path:
            payload["messages"] = per_message_summaries(records)
        if args.profile:
            payload["profile"] = profile_from_records(records)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    sections = []
    if args.per_message:
        sections.append(render_per_message(records))
    if args.critical_path:
        sections.append(render_critical_paths(records))
    if args.profile:
        sections.append(render_profile(records, args.profile_sort))
    if not sections:
        sections.append(render_report(records, args.prefix))
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
