"""Bounded in-process time-series store over the metrics registry.

The recorder's metrics are *instantaneous*: a scrape sees the current
counter values and gauge levels, but nothing retains history — "what was
the shm ring fill 30 s ago", "how fast are offloads completing", "which
target started straggling a minute into the soak" are unanswerable. This
module adds the missing axis of time at a fixed, tiny cost:

* :class:`SeriesRing` — one bounded series: a float64 value ring plus a
  parallel timestamp ring (``array('d')``), overwritten in place once
  retention is reached. No allocation per sample after warmup.
* :class:`TimeSeriesStore` — name -> ring table fed by snapshotting the
  live :class:`~repro.telemetry.metrics.MetricsRegistry` on a fixed
  interval (default 1 s), with PromQL-flavoured queries:
  :meth:`~TimeSeriesStore.range`, :meth:`~TimeSeriesStore.rate`
  (counter-reset aware), :meth:`~TimeSeriesStore.delta`,
  :meth:`~TimeSeriesStore.percentile_of_window`.
* :class:`Scoreboard` — per-target health/load vectors (in-flight
  depth, reply p95, error rate, ring fill / send-queue bytes) derived
  from the fan-out backend's per-member stats, the health monitor and
  optional OP_INTROSPECT probes, written as ``target.*.<node>`` series
  following the existing dotted-suffix gauge convention.
* :class:`AnomalyDetector` — rolling median/MAD scoring over scoreboard
  series: emits ``telemetry.anomaly`` events, exposes
  ``anomaly.score.*`` gauges, notes the flight recorder (bundle
  trigger-eligible) and advises the hedger away from anomalous targets.
* :class:`Tsdb` — the assembled sampler: a daemon thread that ticks the
  snapshot + scoreboard + detector; ~zero cost when not installed (the
  recorder's ``tsdb`` attribute stays ``None`` and no thread exists).

Everything here is stdlib-only and safe to query from any thread; one
store-level lock serialises the 1 Hz writer against readers.
"""

from __future__ import annotations

import math
import threading
import time
from array import array
from typing import Any, Callable, Iterable, Mapping

from repro.telemetry.metrics import MetricsRegistry, percentile

__all__ = [
    "AnomalyDetector",
    "Scoreboard",
    "SeriesRing",
    "TimeSeriesStore",
    "Tsdb",
    "install_tsdb",
]

#: Default samples retained per series (600 at 1 s = 10 minutes).
DEFAULT_RETENTION = 600

#: Default cap on distinct series; protects against cardinality leaks
#: (e.g. an unbounded label) eating the heap one ring at a time.
DEFAULT_MAX_SERIES = 2048


class SeriesRing:
    """One bounded time series: parallel float64 value + timestamp rings.

    Samples are appended at a cursor that wraps; :meth:`items` returns
    them oldest-first regardless of wrap state. Not internally locked —
    the owning :class:`TimeSeriesStore` serialises access.
    """

    __slots__ = ("_ts", "_values", "_capacity", "_cursor", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ValueError(f"series retention must be >= 2, got {capacity}")
        self._capacity = capacity
        self._ts = array("d", bytes(8 * capacity))
        self._values = array("d", bytes(8 * capacity))
        self._cursor = 0
        self._count = 0

    def append(self, ts: float, value: float) -> None:
        self._ts[self._cursor] = ts
        self._values[self._cursor] = value
        self._cursor = (self._cursor + 1) % self._capacity
        if self._count < self._capacity:
            self._count += 1

    def __len__(self) -> int:
        return self._count

    def last(self) -> tuple[float, float] | None:
        """Most recent ``(ts, value)``, or ``None`` when empty."""
        if self._count == 0:
            return None
        idx = (self._cursor - 1) % self._capacity
        return (self._ts[idx], self._values[idx])

    def items(self, since: float | None = None) -> list[tuple[float, float]]:
        """Samples oldest-first, optionally only those with ``ts >= since``."""
        if self._count == 0:
            return []
        start = (self._cursor - self._count) % self._capacity
        out: list[tuple[float, float]] = []
        for i in range(self._count):
            idx = (start + i) % self._capacity
            ts = self._ts[idx]
            if since is None or ts >= since:
                out.append((ts, self._values[idx]))
        return out


class TimeSeriesStore:
    """Bounded name -> :class:`SeriesRing` table with range queries.

    Parameters
    ----------
    retention:
        Samples kept per series (ring capacity).
    max_series:
        Hard cap on distinct series; further names are dropped and
        counted in :attr:`dropped_series` rather than allocated.
    """

    def __init__(self, retention: int = DEFAULT_RETENTION,
                 max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.retention = retention
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: dict[str, SeriesRing] = {}
        #: Samples refused because the series cap was hit.
        self.dropped_series = 0

    # -- writing -----------------------------------------------------------
    def record(self, name: str, value: float, ts: float) -> None:
        """Append one sample to ``name``'s ring (creating it on first use)."""
        with self._lock:
            ring = self._series.get(name)
            if ring is None:
                if len(self._series) >= self.max_series:
                    self.dropped_series += 1
                    return
                ring = self._series[name] = SeriesRing(self.retention)
            ring.append(ts, float(value))

    def observe_snapshot(self, snapshot: Mapping[str, Any], ts: float) -> None:
        """Fold one registry snapshot into the rings.

        Counters are stored raw (cumulative — :meth:`rate` derives the
        per-second view), gauges as-is; every histogram contributes its
        lifetime ``.count`` (cumulative, rate-able) and windowed ``.p95``
        as two derived series.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.record(name, value, ts)
        for name, value in snapshot.get("gauges", {}).items():
            self.record(name, value, ts)
        for name, summary in snapshot.get("histograms", {}).items():
            self.record(name + ".count", summary.get("count", 0), ts)
            self.record(name + ".p95", summary.get("p95", 0.0), ts)

    # -- queries -----------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def latest(self, name: str) -> float | None:
        """Most recent value of ``name``, or ``None``."""
        with self._lock:
            ring = self._series.get(name)
            last = ring.last() if ring is not None else None
        return last[1] if last is not None else None

    def range(self, name: str, window: float | None = None,
              now: float | None = None) -> list[tuple[float, float]]:
        """``(ts, value)`` samples of the last ``window`` seconds.

        ``window=None`` returns the whole retained ring. ``now`` anchors
        the window end (defaults to the newest sample's timestamp, so a
        stopped sampler still answers over its final window); an
        explicit ``now`` bounds both ends — ``(now - window, now]`` —
        so queries can look *back into* history, not just at its tail.
        """
        with self._lock:
            ring = self._series.get(name)
            if ring is None:
                return []
            if window is None:
                return ring.items()
            last = ring.last()
            if last is None:
                return []
            anchor = last[0] if now is None else now
            points = ring.items(since=anchor - window)
        if now is not None:
            points = [p for p in points if p[0] <= now]
        return points

    def delta(self, name: str, window: float | None = None,
              now: float | None = None) -> float:
        """Last-minus-first value over the window (0.0 when < 2 samples)."""
        points = self.range(name, window, now)
        if len(points) < 2:
            return 0.0
        return points[-1][1] - points[0][1]

    def rate(self, name: str, window: float | None = None,
             now: float | None = None) -> float:
        """Per-second increase of a cumulative series over the window.

        Counter-reset aware: a sample *lower* than its predecessor means
        the process (or instrument) restarted — the post-reset value is
        counted as an increase from zero instead of a huge negative
        step, matching PromQL's ``rate()`` semantics. Returns 0.0 when
        fewer than two samples span the window.
        """
        points = self.range(name, window, now)
        if len(points) < 2:
            return 0.0
        increase = 0.0
        prev = points[0][1]
        for _, value in points[1:]:
            if value >= prev:
                increase += value - prev
            else:  # counter reset: the new value accrued from zero
                increase += value
            prev = value
        span = points[-1][0] - points[0][0]
        if span <= 0.0:
            return 0.0
        return increase / span

    def percentile_of_window(self, name: str, q: float,
                             window: float | None = None,
                             now: float | None = None) -> float:
        """The ``q``-th percentile of the sample *values* in the window."""
        points = self.range(name, window, now)
        if not points:
            return 0.0
        return percentile([v for _, v in points], q)

    # -- persistence -------------------------------------------------------
    def to_json(self, window: float | None = None,
                now: float | None = None) -> dict[str, Any]:
        """JSON-friendly dump: ``{name: {"t": [...], "v": [...]}}``.

        The shape crash bundles persist as ``timeseries.json``;
        timestamps are absolute (``time.time`` epoch seconds).
        """
        out: dict[str, Any] = {}
        for name in self.names():
            points = self.range(name, window, now)
            if not points:
                continue
            out[name] = {"t": [round(t, 6) for t, _ in points],
                         "v": [v for _, v in points]}
        return out

    def clear(self) -> None:
        with self._lock:
            self._series.clear()


class Scoreboard:
    """Per-target health/load vectors derived from live runtime state.

    Each refresh reads the backend's per-member stats (the fan-out
    backend reports one entry per target; single-target backends report
    node 1), the health monitor's node table and — every
    ``probe_interval`` seconds when ``probe`` is on — an OP_INTROSPECT
    round trip, and writes ``target.*.<node>`` series into the store:

    ========================== ========================================
    ``target.in_flight.<n>``   replies pending on the wire to target n
    ``target.queue_bytes.<n>`` send-queue backlog / ring fill bytes
    ``target.ring_fill.<n>``   shm request-ring occupancy (0..1)
    ``target.error_rate.<n>``  failed offloads per second (rate of the
                               ``target.errors.<n>`` counter)
    ``target.pending_invokes.<n>`` target-side queue depth (probe only)
    ========================== ========================================

    Reply-latency p95 per target rides for free: the completion hook
    feeds ``target.reply.<n>`` log histograms, which the sampler already
    derives into ``target.reply.<n>.p95`` series. The vector returned by
    :meth:`vectors` merges all of the above for ``/introspect`` and
    ``/healthz`` detail.
    """

    #: Window over which the error rate is computed, seconds.
    ERROR_WINDOW = 30.0

    def __init__(self, store: TimeSeriesStore, *, probe: bool = False,
                 probe_interval: float = 5.0) -> None:
        self.store = store
        self.probe = probe
        self.probe_interval = probe_interval
        self._runtime: Any = None
        self._last_probe = 0.0

    def attach_runtime(self, runtime: Any) -> None:
        self._runtime = runtime

    def detach_runtime(self) -> None:
        self._runtime = None

    def refresh(self, now: float) -> None:
        """Sample per-target state into the store (one tick)."""
        runtime = self._runtime
        if runtime is None:
            return
        backend = getattr(runtime, "backend", None)
        per_target = getattr(backend, "per_target_stats", None)
        stats: Mapping[int, Mapping[str, Any]] = {}
        if per_target is not None:
            try:
                stats = per_target()
            except Exception:  # noqa: BLE001 - observer must not throw
                stats = {}
        for node, vec in stats.items():
            for key in ("in_flight", "queue_bytes", "ring_fill"):
                value = vec.get(key)
                if value is not None:
                    self.store.record(f"target.{key}.{node}", float(value), now)
            self.store.record(
                f"target.error_rate.{node}",
                self.store.rate(f"target.errors.{node}", self.ERROR_WINDOW,
                                now=now),
                now,
            )
        if self.probe and now - self._last_probe >= self.probe_interval:
            self._last_probe = now
            self._probe(backend, now)

    def _probe(self, backend: Any, now: float) -> None:
        introspect = getattr(backend, "introspect_target", None)
        if introspect is None:
            return
        try:
            payload = introspect()
        except Exception:  # noqa: BLE001 - probes are best-effort
            return
        targets = payload.get("targets") or [payload]
        for entry in targets:
            node = entry.get("node", 1)
            pending = entry.get("pending_invokes")
            if pending is not None:
                self.store.record(
                    f"target.pending_invokes.{node}", float(pending), now
                )

    def vectors(self, window: float = 60.0) -> dict[int, dict[str, Any]]:
        """Merged per-target vector from the latest samples."""
        out: dict[int, dict[str, Any]] = {}
        for name in self.store.names():
            if not name.startswith("target."):
                continue
            parts = name.split(".")
            try:
                node = int(parts[-1])
            except ValueError:
                # target.reply.<n>.p95 and friends: node one from the end
                try:
                    node = int(parts[-2])
                except (ValueError, IndexError):
                    continue
                key = ".".join(parts[1:-2] + [parts[-1]])
            else:
                key = ".".join(parts[1:-1])
            value = self.store.latest(name)
            if value is None:
                continue
            out.setdefault(node, {})[key] = value
        runtime = self._runtime
        monitor = getattr(runtime, "monitor", None) if runtime else None
        if monitor is not None:
            try:
                for node, record in monitor.snapshot().items():
                    out.setdefault(int(node), {})["health"] = record.get(
                        "health", "unknown")
            except Exception:  # noqa: BLE001
                pass
        return out


class AnomalyDetector:
    """Rolling median/MAD outlier scoring over store series.

    Every evaluation scores each watched series' newest sample against
    the median of its trailing window: ``score = |x - median| / scale``
    with ``scale = max(1.4826 * MAD, rel_floor * |median|, abs_floor)``
    (the floors keep near-constant series from flagging on noise).
    Series whose baseline is identically zero (``MAD == 0`` and
    ``median == 0`` — an idle target's ``in_flight``/``error_rate``)
    are *not* scored: a zero history carries no scale information, and
    any floor small enough to keep latency series sensitive would make
    the first sample after an idle period score astronomically and flap
    a healthy target. Cumulative series are excluded outright (see
    ``exclude_suffixes`` / ``exclude_prefixes``): a monotone counter
    level like ``target.reply.N.count`` always drifts off its trailing
    median under normal traffic — consumers who want them watched
    should score their ``rate()`` instead (the scoreboard already
    derives ``target.error_rate.<n>`` for exactly this reason).

    A score at or above ``threshold`` on ``enter_ticks`` *consecutive*
    evaluations marks the series anomalous (a single-tick blip never
    enters); it recovers once the score falls below ``threshold / 2``
    (hysteresis, so a value oscillating around the trip point does not
    flap events).

    On each transition the detector emits a ``telemetry.anomaly`` /
    ``telemetry.anomaly_recovered`` event through ``emit`` (the
    recorder's sampling-proof ``force_event``), notes the flight
    recorder, and — entering only — fires a trigger-eligible crash
    bundle (``telemetry_anomaly``), armed or not being the flight
    recorder's decision. ``anomaly.score.<series>`` gauges expose the
    live scores for scraping.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        metrics: MetricsRegistry | None = None,
        *,
        prefixes: Iterable[str] = ("target.",),
        exclude_suffixes: Iterable[str] = (".count",),
        exclude_prefixes: Iterable[str] = ("target.errors.",),
        window: float = 60.0,
        min_samples: int = 8,
        threshold: float = 5.0,
        rel_floor: float = 0.05,
        abs_floor: float = 1e-9,
        enter_ticks: int = 2,
        emit: Callable[..., None] | None = None,
    ) -> None:
        self.store = store
        self.metrics = metrics
        self.prefixes = tuple(prefixes)
        self.exclude_suffixes = tuple(exclude_suffixes)
        self.exclude_prefixes = tuple(exclude_prefixes)
        self.window = window
        self.min_samples = max(3, min_samples)
        self.threshold = threshold
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        self.enter_ticks = max(1, enter_ticks)
        self._emit = emit
        self._lock = threading.Lock()
        self._active: dict[str, dict[str, Any]] = {}
        #: name -> consecutive evaluations at/above threshold (pre-entry).
        self._pending: dict[str, int] = {}

    def watches(self, name: str) -> bool:
        """Whether ``name`` is scored: prefix-matched and not excluded.

        Cumulative series (histogram ``.count`` derivatives, raw error
        counters) are excluded — the level-shift detector would flag
        their normal monotone growth; their rates are scored instead.
        """
        if not name.startswith(self.prefixes):
            return False
        if name.endswith(self.exclude_suffixes):
            return False
        return not name.startswith(self.exclude_prefixes)

    # -- scoring -----------------------------------------------------------
    def score(self, name: str, now: float | None = None) -> float | None:
        """Current median/MAD score of ``name`` (None when too few samples)."""
        points = self.store.range(name, self.window, now)
        if len(points) < self.min_samples:
            return None
        values = [v for _, v in points]
        latest = values[-1]
        baseline = values[:-1]
        med = percentile(baseline, 50)
        mad = percentile([abs(v - med) for v in baseline], 50)
        if mad == 0.0 and med == 0.0:
            # Identically-zero baseline (idle target): no scale
            # information — any finite floor either deadens latency
            # series or makes the first post-idle sample score ~1e9.
            return None
        scale = max(1.4826 * mad, self.rel_floor * abs(med), self.abs_floor)
        return abs(latest - med) / scale

    def evaluate(self, now: float) -> list[dict[str, Any]]:
        """Score every watched series; emit transitions. Returns entries."""
        entered: list[dict[str, Any]] = []
        for name in self.store.names():
            if not self.watches(name):
                continue
            value = self.score(name, now)
            if value is None or not math.isfinite(value):
                continue
            if self.metrics is not None:
                self.metrics.gauge(f"anomaly.score.{name}").set(value)
            with self._lock:
                active = name in self._active
                if value >= self.threshold and not active:
                    # Entry requires the deviation to persist for
                    # enter_ticks consecutive evaluations — a one-tick
                    # blip (GC pause, scheduler hiccup) never enters.
                    streak = self._pending.get(name, 0) + 1
                    if streak < self.enter_ticks:
                        self._pending[name] = streak
                        continue
                    self._pending.pop(name, None)
                    entry = {"series": name, "score": round(value, 3),
                             "since": now,
                             "latest": self.store.latest(name)}
                    self._active[name] = entry
                    entered.append(entry)
                elif value < self.threshold:
                    self._pending.pop(name, None)
                    if active and value < self.threshold / 2.0:
                        entry = self._active.pop(name)
                        self._transition("telemetry.anomaly_recovered",
                                         name, value, entry, now)
        for entry in entered:
            self._transition("telemetry.anomaly", entry["series"],
                             entry["score"], entry, now, trigger=True)
        return entered

    def _transition(self, event: str, name: str, score: float,
                    entry: Mapping[str, Any], now: float, *,
                    trigger: bool = False) -> None:
        fields = {"series": name, "score": round(float(score), 3),
                  "since": entry.get("since", now)}
        if self._emit is not None:
            self._emit(event, category="telemetry", **fields)
        from repro.telemetry import flightrecorder

        # Entering an anomaly is trigger-eligible: dumps a bundle when a
        # crash dir is armed, a silent no-op otherwise (and debounced
        # either way). Recovery just leaves a note in the ring.
        flightrecorder.incident(
            event, dump_reason="telemetry_anomaly" if trigger else None,
            **fields,
        )

    # -- consumers ---------------------------------------------------------
    def anomalies(self) -> list[dict[str, Any]]:
        """Currently anomalous series, oldest first."""
        with self._lock:
            return sorted(self._active.values(), key=lambda e: e["since"])

    def anomalous_nodes(self) -> set[int]:
        """Target ids implicated by active ``target.*`` anomalies.

        The hedger consults this as *advisory* input: prefer a hedge
        destination that is not currently anomalous.
        """
        nodes: set[int] = set()
        with self._lock:
            names = list(self._active)
        for name in names:
            if not name.startswith("target."):
                continue
            for part in reversed(name.split(".")):
                try:
                    nodes.add(int(part))
                    break
                except ValueError:
                    continue
        return nodes

    def clear(self) -> None:
        with self._lock:
            self._active.clear()
            self._pending.clear()


class Tsdb:
    """The assembled sampler: store + scoreboard + detector + thread.

    Installed on the recorder as ``recorder.tsdb`` by
    :func:`install_tsdb`; everything else in the codebase discovers it
    via ``getattr(recorder, "tsdb", None)`` so the cost is one attribute
    read when the store is off.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        interval: float = 1.0,
        retention: int = DEFAULT_RETENTION,
        max_series: int = DEFAULT_MAX_SERIES,
        probe: bool = False,
        detector: AnomalyDetector | None = None,
        emit: Callable[..., None] | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval <= 0.0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.registry = registry
        self.interval = interval
        self.clock = clock
        self.store = TimeSeriesStore(retention=retention, max_series=max_series)
        self.scoreboard = Scoreboard(self.store, probe=probe)
        self.detector = detector if detector is not None else AnomalyDetector(
            self.store, registry, emit=emit)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Ticks taken so far (tests and introspection).
        self.samples = 0

    # -- lifecycle ---------------------------------------------------------
    def attach_runtime(self, runtime: Any) -> None:
        self.scoreboard.attach_runtime(runtime)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-tsdb-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.scoreboard.detach_runtime()
        # A stopped sampler can never observe recovery: leaving active
        # anomalies behind would demote those targets forever in any
        # consumer (hedger, /healthz) that outlives this runtime.
        self.detector.clear()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - the sampler must survive
                pass

    def sample_once(self, now: float | None = None) -> None:
        """One sampler tick: registry snapshot -> scoreboard -> detector."""
        ts = self.clock() if now is None else now
        self.store.observe_snapshot(self.registry.snapshot(), ts)
        self.scoreboard.refresh(ts)
        self.detector.evaluate(ts)
        self.samples += 1


def install_tsdb(recorder: Any, *, interval: float = 1.0,
                 retention: int = DEFAULT_RETENTION,
                 max_series: int = DEFAULT_MAX_SERIES,
                 probe: bool = False) -> Tsdb:
    """Build a :class:`Tsdb` over ``recorder`` and attach it.

    Does not start the sampler thread — the caller starts it once the
    runtime exists (so the scoreboard has per-target stats to read).
    """
    tsdb = Tsdb(
        recorder.metrics,
        interval=interval,
        retention=retention,
        max_series=max_series,
        probe=probe,
        emit=recorder.force_event,
    )
    recorder.tsdb = tsdb
    return tsdb
