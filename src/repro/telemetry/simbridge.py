"""Bridge from the sim layer's virtual-time tracer to Chrome traces.

The simulation kernel has its own tracer
(:class:`repro.sim.trace.Tracer`) that records protocol-phase spans in
*virtual* seconds. This module converts those records into the same
Chrome ``trace_event`` shape the wall-clock telemetry exporter emits, so
a simulated DMA offload and a real TCP offload open side by side in one
``chrome://tracing`` / Perfetto window — the paper's Fig. 9 cost
decomposition next to the functional path's measured one.

Virtual seconds map to trace microseconds one-to-one with the real
exporter (1 virtual second = 1e6 ts units), so durations read the same
way in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.sim.trace import TraceRecord, Tracer

__all__ = ["sim_to_chrome", "write_sim_chrome_trace"]

#: pid used for simulated-process rows, clearly apart from real pids.
SIM_PID = 0


def _coerce(source: Tracer | Iterable[TraceRecord]) -> list[TraceRecord]:
    if isinstance(source, Tracer):
        return list(source.records)
    return list(source)


def sim_to_chrome(
    source: Tracer | Iterable[TraceRecord],
    *,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Convert sim :class:`TraceRecord` entries to a Chrome trace object.

    Span records become complete events whose ``ts`` is the span *start*
    (``record.time`` is the span end in the sim tracer); points and
    kernel events become instant events. All rows live under a synthetic
    pid ``0`` named ``"simulated"``.
    """
    records = _coerce(source)
    trace_events: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": SIM_PID,
        "tid": 0,
        "args": {"name": "simulated (virtual time)"},
    }]
    for record in records:
        if record.kind == "span":
            trace_events.append({
                "name": record.label,
                "cat": "sim",
                "ph": "X",
                "ts": (record.time - record.duration) * 1e6,
                "dur": record.duration * 1e6,
                "pid": SIM_PID,
                "tid": 0,
                "args": {} if record.detail is None else {"detail": record.detail},
            })
        else:  # "point" and observed kernel "event" records
            trace_events.append({
                "name": record.label,
                "cat": "sim",
                "ph": "i",
                "s": "t",
                "ts": record.time * 1e6,
                "pid": SIM_PID,
                "tid": 0,
                "args": {} if record.detail is None else {"detail": record.detail},
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "time_domain": "simulated-seconds",
            **(metadata or {}),
        },
    }


def write_sim_chrome_trace(
    path: str | Path,
    source: Tracer | Iterable[TraceRecord],
    *,
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write a sim trace as a Chrome/Perfetto-loadable JSON file."""
    path = Path(path)
    path.write_text(json.dumps(sim_to_chrome(source, metadata=metadata), indent=1))
    return path
