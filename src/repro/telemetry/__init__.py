"""Telemetry: tracing, metrics and profiling of the real offload path.

The sim layer decomposes *virtual* time (:mod:`repro.sim.trace`); this
subsystem decomposes *wall-clock* time on the functional backends — the
measurement substrate behind every latency claim about the real path,
mirroring how the paper argues its 6.1 µs vs 432 µs breakdown (Fig. 9).

Layout:

* :mod:`repro.telemetry.recorder` — span/event recorder
  (``perf_counter_ns``, thread-safe, ring-buffered, free while
  disabled) plus the module-level ``enable()/span()/event()/count()``
  switchboard used by the instrumented runtime, HAM and backend code;
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with a
  snapshot API;
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON and JSONL
  exporters (round-trippable);
* :mod:`repro.telemetry.simbridge` — exports sim-tracer records to the
  same Chrome format for side-by-side simulated-vs-real timelines;
* :mod:`repro.telemetry.context` — the distributed trace context
  (``trace_id`` / parent span / sampled flag) minted per offload and
  carried in the version-2 active-message header across processes;
* :mod:`repro.telemetry.distributed` — clock-offset estimation
  (ping-pong), record alignment, trace merging and per-message critical
  paths for two-process timelines;
* :mod:`repro.telemetry.promexport` — Prometheus text-format rendering
  of the metrics snapshot (native ``_bucket`` histogram series for
  log-bucketed instruments) plus a stdlib ``/metrics`` + ``/healthz``
  HTTP endpoint (:class:`~repro.telemetry.promexport.MetricsServer`);
* :mod:`repro.telemetry.sampling` — head-based trace-id-consistent
  sampling plus the tail-retention pipeline that keeps slow/errored
  unsampled traces and drops fast ones after folding aggregates;
* :mod:`repro.telemetry.profile` — per-kernel continuous profiles
  (count, bytes, p50/p95/p99 per phase) fed by every completed offload;
* :mod:`repro.telemetry.slo` — declarative SLOs with multi-window
  burn-rate alerting (``telemetry.slo_breach`` events, ``/healthz``
  degradation);
* :mod:`repro.telemetry.tsdb` — bounded in-process time-series store
  (fixed-interval snapshots of the registry into per-series float64
  rings) with ``range``/``rate``/``delta`` queries, the per-target
  :class:`~repro.telemetry.tsdb.Scoreboard` and rolling median/MAD
  anomaly detection feeding hedging and ``/healthz``;
* :mod:`repro.telemetry.report` — ``python -m repro.telemetry.report``,
  per-phase latency percentiles, per-message groupings, critical paths
  and per-kernel profiles from a trace file — or a post-mortem view of
  a flight-recorder crash bundle directory;
* :mod:`repro.telemetry.flightrecorder` — always-on black-box ring of
  control-plane events, dumped as a crash bundle on offload errors,
  peer death, SLO breaches, ``SIGUSR2`` or exit-with-pending;
* :mod:`repro.telemetry.inspect` — :class:`RuntimeInspector`, the
  merged host + target live-state snapshot behind
  ``offload.introspect()`` and the ``/introspect`` endpoint;
* :mod:`repro.telemetry.top` — ``python -m repro.telemetry.top``, a
  live terminal view (`top` for the offload runtime) over
  ``/introspect``.

Quick start::

    from repro import telemetry
    from repro.telemetry import export

    telemetry.enable()
    ... run offloads ...
    export.write_chrome_trace("trace.json", telemetry.get())

Phase taxonomy (span names) of one offload, host then target:
``offload.serialize`` -> ``offload.enqueue`` -> ``offload.transport``
-> ``offload.execute`` -> ``offload.reply`` -> ``offload.deserialize``.
See ``docs/observability.md`` for the full catalog.
"""

from repro.telemetry.context import (
    TraceContext,
    activate,
    current,
    current_trace_id_hex,
    new_trace,
)
from repro.telemetry.flightrecorder import FlightRecorder
from repro.telemetry.inspect import RuntimeInspector
from repro.telemetry.distributed import (
    ClockSync,
    align_records,
    critical_path,
    group_by_trace,
    merge_traces,
    trace_summary,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.profile import KernelProfile, KernelProfiler
from repro.telemetry.promexport import (
    MetricsServer,
    TelemetryConfig,
    to_prometheus,
)
from repro.telemetry.sampling import HeadSampler, TailPipeline, complete_offload
from repro.telemetry.slo import SLO, SLOMonitor, default_slos
from repro.telemetry.tsdb import (
    AnomalyDetector,
    Scoreboard,
    SeriesRing,
    TimeSeriesStore,
    Tsdb,
    install_tsdb,
)
from repro.telemetry.recorder import (
    EventRecord,
    Recorder,
    SpanRecord,
    count,
    current_span_id,
    disable,
    enable,
    enabled,
    event,
    gauge,
    get,
    observe,
    span,
)

__all__ = [
    "AnomalyDetector",
    "ClockSync",
    "Counter",
    "EventRecord",
    "FlightRecorder",
    "Gauge",
    "HeadSampler",
    "Histogram",
    "KernelProfile",
    "KernelProfiler",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsServer",
    "Recorder",
    "RuntimeInspector",
    "SLO",
    "SLOMonitor",
    "Scoreboard",
    "SeriesRing",
    "SpanRecord",
    "TailPipeline",
    "TelemetryConfig",
    "TimeSeriesStore",
    "TraceContext",
    "Tsdb",
    "activate",
    "align_records",
    "complete_offload",
    "count",
    "critical_path",
    "current",
    "current_span_id",
    "current_trace_id_hex",
    "default_slos",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "get",
    "group_by_trace",
    "install_tsdb",
    "merge_traces",
    "new_trace",
    "observe",
    "percentile",
    "span",
    "to_prometheus",
    "trace_summary",
]
