"""Telemetry: tracing, metrics and profiling of the real offload path.

The sim layer decomposes *virtual* time (:mod:`repro.sim.trace`); this
subsystem decomposes *wall-clock* time on the functional backends — the
measurement substrate behind every latency claim about the real path,
mirroring how the paper argues its 6.1 µs vs 432 µs breakdown (Fig. 9).

Layout:

* :mod:`repro.telemetry.recorder` — span/event recorder
  (``perf_counter_ns``, thread-safe, ring-buffered, free while
  disabled) plus the module-level ``enable()/span()/event()/count()``
  switchboard used by the instrumented runtime, HAM and backend code;
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with a
  snapshot API;
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON and JSONL
  exporters (round-trippable);
* :mod:`repro.telemetry.simbridge` — exports sim-tracer records to the
  same Chrome format for side-by-side simulated-vs-real timelines;
* :mod:`repro.telemetry.context` — the distributed trace context
  (``trace_id`` / parent span / sampled flag) minted per offload and
  carried in the version-2 active-message header across processes;
* :mod:`repro.telemetry.distributed` — clock-offset estimation
  (ping-pong), record alignment, trace merging and per-message critical
  paths for two-process timelines;
* :mod:`repro.telemetry.promexport` — Prometheus text-format rendering
  of the metrics snapshot plus a stdlib ``/metrics`` + ``/healthz``
  HTTP endpoint (:class:`~repro.telemetry.promexport.MetricsServer`);
* :mod:`repro.telemetry.report` — ``python -m repro.telemetry.report``,
  per-phase latency percentiles, per-message groupings and critical
  paths from a trace file.

Quick start::

    from repro import telemetry
    from repro.telemetry import export

    telemetry.enable()
    ... run offloads ...
    export.write_chrome_trace("trace.json", telemetry.get())

Phase taxonomy (span names) of one offload, host then target:
``offload.serialize`` -> ``offload.enqueue`` -> ``offload.transport``
-> ``offload.execute`` -> ``offload.reply`` -> ``offload.deserialize``.
See ``docs/observability.md`` for the full catalog.
"""

from repro.telemetry.context import (
    TraceContext,
    activate,
    current,
    current_trace_id_hex,
    new_trace,
)
from repro.telemetry.distributed import (
    ClockSync,
    align_records,
    critical_path,
    group_by_trace,
    merge_traces,
    trace_summary,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.promexport import (
    MetricsServer,
    TelemetryConfig,
    to_prometheus,
)
from repro.telemetry.recorder import (
    EventRecord,
    Recorder,
    SpanRecord,
    count,
    current_span_id,
    disable,
    enable,
    enabled,
    event,
    gauge,
    get,
    observe,
    span,
)

__all__ = [
    "ClockSync",
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Recorder",
    "SpanRecord",
    "TelemetryConfig",
    "TraceContext",
    "activate",
    "align_records",
    "count",
    "critical_path",
    "current",
    "current_span_id",
    "current_trace_id_hex",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "get",
    "group_by_trace",
    "merge_traces",
    "new_trace",
    "observe",
    "percentile",
    "span",
    "to_prometheus",
    "trace_summary",
]
