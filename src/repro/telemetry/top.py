"""``repro top``: a live terminal view of a running offload session.

Polls the metrics server's ``/introspect`` endpoint (see
:mod:`repro.telemetry.inspect`) and renders the merged host + target
snapshot as one compact frame per interval — window occupancy, tenant
queue depths, health verdicts, shm ring fill levels, worker-pool depth
and the flight recorder's counters. Think ``top`` for the offload
runtime: the first tool to point at a session that looks wedged.

Usage::

    python -m repro.telemetry.top http://127.0.0.1:9100
    python -m repro.telemetry.top http://127.0.0.1:9100 --once
    python -m repro.telemetry.top http://127.0.0.1:9100 --json

When the runtime has the TSDB sampler installed
(``offload.init(telemetry={"tsdb": True})``), frames grow a SERIES
section: per-target scoreboard series with rates and sparklines, plus
any active anomalies. ``--json`` dumps the raw snapshot once for
scripts.

Rendering is a pure function (:func:`render_frame`) over the snapshot
dict, so tests and offline tooling can feed it saved payloads.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

__all__ = ["fetch_snapshot", "main", "render_frame", "sparkline"]

#: ANSI clear-screen + cursor-home, prepended between live frames.
_CLEAR = "\x1b[2J\x1b[H"

#: Eight-level block ramp for sparklines, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 24) -> str:
    """Render ``values`` as a unicode block sparkline (pure).

    The last ``width`` values are scaled into the 8-level block ramp;
    a flat series renders as the lowest block so "no movement" and
    "no data" look different.
    """
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[min(top, int((v - lo) / span * top + 0.5))] for v in values
    )


def fetch_snapshot(url: str, timeout: float = 2.0) -> dict[str, Any]:
    """GET ``<url>/introspect`` and decode the JSON snapshot."""
    target = url.rstrip("/")
    if not target.endswith("/introspect"):
        target += "/introspect"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        payload = json.loads(response.read().decode())
    if not isinstance(payload, dict):
        raise ValueError(f"malformed introspection payload: {payload!r}")
    return payload


def _fmt_ring(ring: Mapping[str, Any] | None) -> str:
    if not ring:
        return "-"
    used = ring.get("used", 0)
    capacity = ring.get("capacity", 0) or 1
    extra = ""
    stalls = ring.get("sleep_stalls")
    if stalls:
        extra = f" ({stalls} stalls)"
    return f"{used}/{capacity} ({100.0 * used / capacity:.1f}%){extra}"


def _fmt_handles(handles: list) -> str:
    if not handles:
        return ""
    labels: dict[str, int] = {}
    for handle in handles:
        label = str(handle.get("label", "?"))
        labels[label] = labels.get(label, 0) + 1
    parts = [
        name if count == 1 else f"{name}x{count}"
        for name, count in sorted(labels.items())
    ]
    return "  [" + ", ".join(parts[:6]) + (", ..." if len(parts) > 6 else "") + "]"


def _host_lines(host: Mapping[str, Any]) -> list[str]:
    lines = [f"HOST  pid {host.get('pid', '?')}"]
    window = host.get("window") or {}
    lines.append(
        f"  window    {window.get('in_flight', 0)}/{window.get('limit', 0)}"
        f" in flight{_fmt_handles(window.get('handles') or [])}"
    )
    transport = host.get("transport") or {}
    backend = transport.get("backend", "?")
    if "request_ring" in transport:
        lines.append(
            f"  transport {backend}  req ring "
            f"{_fmt_ring(transport.get('request_ring'))}  reply ring "
            f"{_fmt_ring(transport.get('reply_ring'))}"
        )
    elif "send_queue_bytes" in transport:
        lines.append(
            f"  transport {backend}  send queue "
            f"{transport.get('send_queue_bytes', 0)} B  recv queue "
            f"{transport.get('recv_queue_bytes', 0)} B"
        )
    else:
        lines.append(f"  transport {backend}")
    if "pending_replies" in transport:
        lines[-1] += f"  pending replies {transport['pending_replies']}"
    qos = host.get("qos")
    if qos:
        window_snap = qos.get("window") or {}
        tenants = window_snap.get("tenants") or {}
        tenant_part = ""
        shed = 0
        if isinstance(tenants, Mapping) and tenants:
            shed = sum(entry.get("shed", 0) for entry in tenants.values())
            tenant_part = "  tenants: " + " ".join(
                f"{tenant}={entry.get('queued', 0)}"
                for tenant, entry in sorted(tenants.items())
            )
        lines.append(
            f"  qos       queued {window_snap.get('queued', 0)}"
            f"  shed {shed}{tenant_part}"
        )
    health = host.get("health")
    if isinstance(health, Mapping) and health:
        verdicts = " ".join(
            f"{node}:{record.get('health', '?')}"
            for node, record in sorted(health.items(), key=lambda kv: str(kv[0]))
            if isinstance(record, Mapping)
        )
        if verdicts:
            lines.append(f"  health    {verdicts}")
    hedging = host.get("hedging")
    if hedging:
        lines.append(
            "  hedging   " + " ".join(
                f"{key}={value}" for key, value in sorted(hedging.items())
            )
        )
    return lines


def _target_lines(target: Mapping[str, Any] | None) -> list[str]:
    if target is None:
        return ["TARGET  (backend has no introspection support)"]
    if "error" in target:
        return [f"TARGET  unreachable: {target['error']}"]
    workers = target.get("workers") or {}
    lines = [
        f"TARGET  pid {target.get('pid', '?')} ({target.get('transport', '?')})",
        f"  workers   {workers.get('active', 0)}/{workers.get('pool_size', 0)}"
        f" active   executed {target.get('messages_executed', 0)}"
        f"   buffers {target.get('live_buffers', 0)}",
    ]
    rings = target.get("rings")
    if rings:
        lines.append(
            f"  rings     request {_fmt_ring(rings.get('request'))}"
            f"  reply {_fmt_ring(rings.get('reply'))}"
        )
    for sub in target.get("targets") or []:
        lines.append(
            f"    node {sub.get('node', '?')}: pid {sub.get('pid', '?')}"
            f" ({sub.get('transport', '?')})"
            f" active {sub.get('workers', {}).get('active', 0)}"
            f" executed {sub.get('messages_executed', 0)}"
        )
    return lines


#: Max series rows in the TSDB section before truncation.
_TSDB_ROWS = 12


def _tsdb_lines(tsdb: Mapping[str, Any] | None) -> list[str]:
    if not tsdb:
        return []
    series = tsdb.get("series") or {}
    lines = [
        f"SERIES  samples {tsdb.get('samples', 0)}"
        f"  interval {tsdb.get('interval', '?')}s"
    ]
    width = max((len(name) for name in series), default=0)
    for name in sorted(series)[:_TSDB_ROWS]:
        entry = series[name] or {}
        spark = sparkline(entry.get("points") or [])
        lines.append(
            f"  {name:<{width}}  {entry.get('rate', 0.0):>10.3f}/s"
            f"  {spark:<24}  {entry.get('last', 0.0):g}"
        )
    if len(series) > _TSDB_ROWS:
        lines.append(f"  ... {len(series) - _TSDB_ROWS} more series")
    anomalies = tsdb.get("anomalies") or []
    if anomalies:
        lines.append(
            "  ANOMALY " + " ".join(
                f"{entry.get('series', '?')}={entry.get('score', 0.0):.1f}"
                for entry in anomalies
            )
        )
    return lines


def render_frame(snapshot: Mapping[str, Any], *, source: str = "") -> str:
    """Render one snapshot as a multi-line terminal frame (pure)."""
    if "error" in snapshot and "host" not in snapshot:
        return f"repro top — {source}\n\n  {snapshot['error']}\n"
    when = time.strftime("%H:%M:%S")
    lines = [f"repro top — {source}  ({when})", ""]
    lines.extend(_host_lines(snapshot.get("host") or {}))
    lines.append("")
    lines.extend(_target_lines(snapshot.get("target")))
    tsdb_lines = _tsdb_lines(snapshot.get("tsdb"))
    if tsdb_lines:
        lines.append("")
        lines.extend(tsdb_lines)
    flight = snapshot.get("flight")
    if flight:
        lines.append("")
        dumps = flight.get("dumps") or []
        lines.append(
            f"FLIGHT  noted {flight.get('noted', 0)}"
            f"  dropped {flight.get('dropped', 0)}"
            f"  dumps {len(dumps)}"
            f"  crash_dir {flight.get('crash_dir') or '-'}"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.top",
        description="Live view of a running offload session's /introspect.",
    )
    parser.add_argument(
        "url",
        help="metrics server base URL, e.g. http://127.0.0.1:9100 "
             "(offload.init(telemetry={'metrics_port': ...}) prints it)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between frames (default 1.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print one raw snapshot as JSON and exit (implies --once; "
             "for scripts and dashboards)",
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-poll HTTP timeout in seconds (default 2.0)",
    )
    args = parser.parse_args(argv)

    if args.json:
        try:
            snapshot = fetch_snapshot(args.url, timeout=args.timeout)
        except (OSError, ValueError, urllib.error.URLError) as exc:
            sys.stderr.write(f"unreachable: {exc}\n")
            return 1
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0

    while True:
        try:
            snapshot = fetch_snapshot(args.url, timeout=args.timeout)
            frame = render_frame(snapshot, source=args.url)
            failed = False
        except (OSError, ValueError, urllib.error.URLError) as exc:
            frame = f"repro top — {args.url}\n\n  unreachable: {exc}\n"
            failed = True
        if args.once:
            sys.stdout.write(frame)
            return 1 if failed else 0
        sys.stdout.write(_CLEAR + frame)
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
