"""Trace exporters: Chrome ``trace_event`` JSON and flat JSONL.

Both formats round-trip: ``parse_chrome_trace(to_chrome(records))`` and
``read_jsonl`` after ``write_jsonl`` reconstruct equivalent
:class:`~repro.telemetry.recorder.SpanRecord` /
:class:`~repro.telemetry.recorder.EventRecord` lists, which is what lets
the report CLI consume either file and what the exporter round-trip
tests assert.

Chrome format notes (the `trace_event` spec as consumed by
``chrome://tracing`` and https://ui.perfetto.dev):

* spans are complete events (``"ph": "X"``) with microsecond ``ts`` and
  ``dur`` fields;
* events are instant events (``"ph": "i"``, thread scope);
* timestamps are normalized so the earliest record sits at ``ts = 0`` —
  host and fetched target records share one timeline because
  ``perf_counter_ns`` reads the system-wide monotonic clock on Linux;
* ``span_id`` / ``parent_id`` ride along as extra top-level keys, which
  viewers ignore but the parser uses to rebuild nesting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.telemetry.recorder import EventRecord, Recorder, SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "dicts_to_records",
    "durations_by_name",
    "load_any",
    "parse_chrome_trace",
    "read_jsonl",
    "records_to_dicts",
    "to_chrome",
    "write_chrome_trace",
    "write_jsonl",
]

#: Bump when the on-disk record shape changes incompatibly.
SCHEMA_VERSION = 1

Record = SpanRecord | EventRecord


def _coerce_records(
    source: Recorder | Iterable[Record],
) -> list[Record]:
    if isinstance(source, Recorder):
        return source.records()
    return list(source)


# --------------------------------------------------------------------------
# plain-dict shape (the JSONL rows and the TCP telemetry-fetch wire format)
# --------------------------------------------------------------------------


def records_to_dicts(source: Recorder | Iterable[Record]) -> list[dict[str, Any]]:
    """Encode records as JSON-friendly dicts (schema-tagged rows)."""
    rows: list[dict[str, Any]] = []
    for record in _coerce_records(source):
        if record.kind == "span":
            rows.append({
                "type": "span",
                "name": record.name,
                "cat": record.category,
                "start_ns": record.start_ns,
                "dur_ns": record.duration_ns,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "pid": record.pid,
                "tid": record.tid,
                "attrs": record.attrs,
                "trace_id": record.trace_id,
            })
        else:
            rows.append({
                "type": "event",
                "name": record.name,
                "cat": record.category,
                "ts_ns": record.ts_ns,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "pid": record.pid,
                "tid": record.tid,
                "attrs": record.attrs,
                "trace_id": record.trace_id,
            })
    return rows


def dicts_to_records(rows: Iterable[dict[str, Any]]) -> list[Record]:
    """Decode rows produced by :func:`records_to_dicts`."""
    records: list[Record] = []
    for row in rows:
        if row.get("type") == "span":
            records.append(SpanRecord(
                name=row["name"],
                category=row.get("cat", "offload"),
                start_ns=int(row["start_ns"]),
                duration_ns=int(row["dur_ns"]),
                span_id=int(row.get("span_id", 0)),
                parent_id=int(row.get("parent_id", 0)),
                pid=int(row.get("pid", 0)),
                tid=int(row.get("tid", 0)),
                attrs=dict(row.get("attrs") or {}),
                trace_id=str(row.get("trace_id", "")),
            ))
        elif row.get("type") == "event":
            records.append(EventRecord(
                name=row["name"],
                category=row.get("cat", "offload"),
                ts_ns=int(row["ts_ns"]),
                span_id=int(row.get("span_id", 0)),
                parent_id=int(row.get("parent_id", 0)),
                pid=int(row.get("pid", 0)),
                tid=int(row.get("tid", 0)),
                attrs=dict(row.get("attrs") or {}),
                trace_id=str(row.get("trace_id", "")),
            ))
        else:
            raise ValueError(f"unknown record row type {row.get('type')!r}")
    return records


# --------------------------------------------------------------------------
# Chrome trace_event JSON
# --------------------------------------------------------------------------


def to_chrome(
    source: Recorder | Iterable[Record],
    *,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a Chrome/Perfetto ``trace_event`` object from records."""
    records = _coerce_records(source)
    starts = [r.start_ns if r.kind == "span" else r.ts_ns for r in records]
    origin_ns = min(starts) if starts else 0
    trace_events: list[dict[str, Any]] = []
    for record in records:
        if record.kind == "span":
            trace_events.append({
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": (record.start_ns - origin_ns) / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "pid": record.pid,
                "tid": record.tid,
                "args": record.attrs,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "trace_id": record.trace_id,
            })
        else:
            trace_events.append({
                "name": record.name,
                "cat": record.category,
                "ph": "i",
                "s": "t",
                "ts": (record.ts_ns - origin_ns) / 1000.0,
                "pid": record.pid,
                "tid": record.tid,
                "args": record.attrs,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "trace_id": record.trace_id,
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "schema_version": SCHEMA_VERSION,
            "origin_ns": origin_ns,
            **(metadata or {}),
        },
    }


def write_chrome_trace(
    path: str | Path,
    source: Recorder | Iterable[Record],
    *,
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome(source, metadata=metadata), indent=1))
    return path


def parse_chrome_trace(source: str | Path | dict[str, Any]) -> list[Record]:
    """Rebuild records from a Chrome trace object or file.

    The inverse of :func:`to_chrome` up to the trace's normalized time
    origin (timestamps come back relative to the earliest record).
    """
    if isinstance(source, (str, Path)):
        obj = json.loads(Path(source).read_text())
    else:
        obj = source
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("not a Chrome trace_event object (no traceEvents)")
    records: list[Record] = []
    for entry in obj["traceEvents"]:
        phase = entry.get("ph")
        common = dict(
            name=entry["name"],
            category=entry.get("cat", "offload"),
            span_id=int(entry.get("span_id", 0)),
            parent_id=int(entry.get("parent_id", 0)),
            pid=int(entry.get("pid", 0)),
            tid=int(entry.get("tid", 0)),
            attrs=dict(entry.get("args") or {}),
            trace_id=str(entry.get("trace_id", "")),
        )
        if phase == "X":
            records.append(SpanRecord(
                start_ns=int(round(entry["ts"] * 1000)),
                duration_ns=int(round(entry["dur"] * 1000)),
                **common,
            ))
        elif phase == "i":
            records.append(EventRecord(
                ts_ns=int(round(entry["ts"] * 1000)),
                **common,
            ))
        # Other phases (metadata events, counters) are ignored.
    return records


# --------------------------------------------------------------------------
# flat JSONL
# --------------------------------------------------------------------------


def write_jsonl(path: str | Path, source: Recorder | Iterable[Record]) -> Path:
    """Write one JSON record per line (grep/jq-friendly)."""
    path = Path(path)
    with path.open("w") as fh:
        for row in records_to_dicts(source):
            fh.write(json.dumps(row) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[Record]:
    """Read records written by :func:`write_jsonl`."""
    rows: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return dicts_to_records(rows)


def load_any(path: str | Path) -> list[Record]:
    """Load records from either trace format, sniffing the content.

    A Chrome trace is one JSON document with ``traceEvents``; JSONL is
    one record object per line (which also starts with ``{``, so the
    sniff parses rather than looking at the first character).
    """
    text = Path(path).read_text()
    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict) and "traceEvents" in obj:
        return parse_chrome_trace(obj)
    if isinstance(obj, dict) and "type" in obj:
        return dicts_to_records([obj])  # single-line JSONL
    if obj is None:
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
        return dicts_to_records(rows)
    raise ValueError(f"{path}: neither a Chrome trace nor telemetry JSONL")


def durations_by_name(
    records: Sequence[Record], prefix: str = ""
) -> dict[str, list[float]]:
    """Group span durations (seconds) by span name, optionally filtered."""
    groups: dict[str, list[float]] = {}
    for record in records:
        if record.kind != "span" or not record.name.startswith(prefix):
            continue
        groups.setdefault(record.name, []).append(record.duration_ns / 1e9)
    return groups
