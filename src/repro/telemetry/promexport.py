"""Prometheus text-format export and a stdlib ``/metrics`` endpoint.

The metrics registry already produces a JSON-friendly
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`; this module
renders that snapshot in the Prometheus text exposition format (0.0.4)
and serves it live from a daemon-thread HTTP server, so a running
offload session can be scraped without touching the trace ring:

* counters  -> ``repro_<name>_total``
* gauges    -> ``repro_<name>``
* ring histograms -> summaries: ``{quantile="0.5"|"0.95"}`` series plus
  ``_sum`` / ``_count``
* log histograms (snapshots carrying a ``buckets`` list, see
  :class:`~repro.telemetry.metrics.LogHistogram`) -> real histogram
  series: cumulative ``_bucket{le="..."}`` lines ending at
  ``le="+Inf"``, plus ``_sum`` / ``_count`` — the per-phase
  ``phase.offload.*`` latencies and the per-kernel profiles land here
  and scrape into native Prometheus quantile queries

Exemplars (``# {trace_id="..."} v`` bucket annotations) are only legal
in the OpenMetrics exposition format — the Prometheus 0.0.4 text parser
rejects trailing content after the sample value. The ``/metrics``
handler therefore content-negotiates: scrapers sending ``Accept:
application/openmetrics-text`` get the OpenMetrics rendering (exemplars
plus the mandatory ``# EOF`` trailer); everyone else gets plain 0.0.4
with no exemplars, so a stock Prometheus always scrapes cleanly.

Everything is standard library (``http.server``); no Prometheus client
dependency. :class:`MetricsServer` binds ``127.0.0.1:0`` by default —
an ephemeral loopback port, printed/queried via :attr:`~MetricsServer.address`
— and also answers ``/healthz`` for liveness probes.
:class:`TelemetryConfig` is the declarative knob accepted by
``offload.init(telemetry=...)``.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

__all__ = [
    "MetricsServer",
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "TelemetryConfig",
    "sanitize_metric_name",
    "to_prometheus",
]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT = re.compile(r"^[0-9]")

#: Content types served on ``/metrics`` depending on the Accept header.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Map an internal dotted metric name onto the Prometheus grammar.

    ``offload.sync.time`` -> ``repro_offload_sync_time``; any character
    outside ``[a-zA-Z0-9_:]`` becomes ``_`` and a leading digit gets an
    underscore escape.
    """
    sanitized = _INVALID_CHARS.sub("_", name)
    if _LEADING_DIGIT.match(sanitized):
        sanitized = "_" + sanitized
    return prefix + sanitized


def _fmt(value: float) -> str:
    """Prometheus number formatting (repr keeps full float precision)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def to_prometheus(
    snapshot: Mapping[str, Any], prefix: str = "repro_",
    *, openmetrics: bool = False,
) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``snapshot`` is the dict from
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`:
    ``{"counters": {...}, "gauges": {...}, "histograms": {name: summary}}``.
    Ring-histogram summaries (count/mean/min/max/p50/p95) become
    Prometheus *summary* series with ``quantile`` labels; summaries that
    carry a ``buckets`` list (log histograms) become native *histogram*
    series with cumulative ``_bucket{le="..."}`` lines. In both cases
    ``_sum`` is reconstructed as ``mean * count`` (exact: mean is
    total/count).

    ``openmetrics=False`` (the default) renders text format 0.0.4 and
    never emits exemplars — the 0.0.4 parser treats any trailing
    content after the value as a malformed timestamp and fails the
    whole scrape. ``openmetrics=True`` renders OpenMetrics 1.0.0:
    counter metadata drops the ``_total`` suffix from the family name,
    retained bucket exemplars ride along as ``# {trace_id="..."} v``
    annotations and the output ends with the mandatory ``# EOF``.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_metric_name(name, prefix) + "_total"
        # OpenMetrics names the counter *family* without _total; the
        # sample line keeps the suffix in both formats.
        family = metric[: -len("_total")] if openmetrics else metric
        lines.append(f"# HELP {family} Counter {name}")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} Gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = sanitize_metric_name(name, prefix)
        count = summary.get("count", 0)
        total = summary.get("mean", 0.0) * count
        if "buckets" in summary:
            lines.append(f"# HELP {metric} Histogram {name}")
            lines.append(f"# TYPE {metric} histogram")
            # Per-bucket exemplars (OpenMetrics: `... # {trace_id="..."} v`)
            # keyed by the same formatted `le` the bucket line will use.
            # Only legal in the OpenMetrics format, never in 0.0.4.
            exemplars: dict[str, tuple[str, float]] = {}
            if openmetrics:
                for bound, trace_id, value in summary.get("exemplars", ()):
                    le = "+Inf" if bound == "+Inf" else _fmt(float(bound))
                    exemplars[le] = (str(trace_id), float(value))
            saw_inf = False
            for bound, cumulative in summary["buckets"]:
                le = "+Inf" if bound == "+Inf" else _fmt(float(bound))
                saw_inf = saw_inf or le == "+Inf"
                line = f'{metric}_bucket{{le="{le}"}} {cumulative}'
                exemplar = exemplars.get(le)
                if exemplar is not None:
                    trace_id, value = exemplar
                    line += f' # {{trace_id="{trace_id}"}} {_fmt(value)}'
                lines.append(line)
            if not saw_inf:
                # The +Inf bucket is mandatory in the exposition format.
                lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {_fmt(total)}")
            lines.append(f"{metric}_count {count}")
            continue
        lines.append(f"# HELP {metric} Histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        lines.append(f'{metric}{{quantile="0.5"}} {_fmt(summary.get("p50", 0.0))}')
        lines.append(f'{metric}{{quantile="0.95"}} {_fmt(summary.get("p95", 0.0))}')
        lines.append(f"{metric}_sum {_fmt(total)}")
        lines.append(f"{metric}_count {count}")
    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative telemetry setup for ``offload.init(telemetry=...)``.

    ``init`` accepts ``True`` (plain recording), this class, or a dict
    with the same field names. ``metrics_port=None`` means no HTTP
    endpoint; ``0`` binds an ephemeral port (query it via
    ``runtime-returned`` server's :attr:`MetricsServer.address`).

    Sampling and SLO fields (see :mod:`repro.telemetry.sampling` and
    :mod:`repro.telemetry.slo`): ``sample_rate=None`` keeps the
    pre-sampling behavior of recording every trace; any float in
    ``[0, 1]`` installs a head sampler plus the tail-retention pipeline.
    ``slos=None`` with ``slo_enabled=True`` uses
    :func:`repro.telemetry.slo.default_slos`; pass a tuple of
    :class:`~repro.telemetry.slo.SLO` (or dicts of their fields) to
    override. The window knobs are counted in operations, the
    5m-/1h-equivalents of a time-based burn-rate stack.
    """

    enabled: bool = True
    capacity: int = 65536
    metrics_port: int | None = None
    metrics_host: str = "127.0.0.1"
    #: Head-sampling probability; None disables sampling (record all).
    sample_rate: float | None = None
    #: Tail retention: rolling-window size / warmup / staging bounds.
    tail_window: int = 512
    tail_min_samples: int = 20
    tail_max_pending: int = 256
    #: SLO burn-rate monitoring.
    slo_enabled: bool = True
    slos: tuple = ()
    slo_fast_window: int = 50
    slo_slow_window: int = 600
    slo_burn_threshold: float = 2.0
    slo_min_samples: int = 10
    #: Flight-recorder crash-bundle directory (see
    #: :mod:`repro.telemetry.flightrecorder`). ``None`` leaves dumping
    #: governed by the ``REPRO_CRASH_DIR`` environment variable.
    crash_dir: str | None = None
    #: In-process time-series store (:mod:`repro.telemetry.tsdb`).
    #: ``False`` keeps history off (no sampler thread exists); ``True``
    #: installs the 1 s sampler with defaults. In the dict form of
    #: ``init(telemetry=...)``, ``"tsdb"`` may itself be a dict with
    #: ``interval`` / ``retention`` / ``max_series`` / ``probe`` keys,
    #: normalized by :meth:`coerce` onto the ``tsdb_*`` fields below.
    tsdb: bool = False
    tsdb_interval: float = 1.0
    tsdb_retention: int = 600
    tsdb_max_series: int = 2048
    #: Whether the scoreboard may issue OP_INTROSPECT probes (one wire
    #: round trip per target every few seconds).
    tsdb_probe: bool = False

    @classmethod
    def coerce(
        cls, value: "bool | Mapping[str, Any] | TelemetryConfig"
    ) -> "TelemetryConfig":
        """Normalize the ``init(telemetry=...)`` argument."""
        if isinstance(value, TelemetryConfig):
            config = value
        elif isinstance(value, bool):
            config = cls(enabled=value)
        elif isinstance(value, Mapping):
            fields = dict(value)
            tsdb = fields.get("tsdb")
            if isinstance(tsdb, Mapping):
                options = dict(tsdb)
                fields["tsdb"] = True
                for key in ("interval", "retention", "max_series", "probe"):
                    if key in options:
                        fields[f"tsdb_{key}"] = options.pop(key)
                if options:
                    raise ValueError(
                        f"unknown tsdb options: {sorted(options)}"
                    )
            config = cls(**fields)
        else:
            raise TypeError(
                "telemetry must be a bool, dict or TelemetryConfig, "
                f"got {type(value).__name__}"
            )
        if config.sample_rate is not None and not (
            0.0 <= float(config.sample_rate) <= 1.0
        ):
            raise ValueError(
                f"sample_rate must be in [0, 1], got {config.sample_rate}"
            )
        if config.slos:
            from repro.telemetry.slo import SLO

            normalized = tuple(
                s if isinstance(s, SLO) else SLO(**dict(s))
                for s in config.slos
            )
            config = replace(config, slos=normalized)
        return config


class _Handler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (Prometheus), ``/healthz`` and ``/introspect``
    (JSON)."""

    # Set per-server via the factory in MetricsServer.
    snapshot_fn: Callable[[], Mapping[str, Any]]
    health_fn: Callable[[], Mapping[str, Any]] | None
    introspect_fn: Callable[[], Mapping[str, Any]] | None
    prefix: str

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            # Exemplar syntax is OpenMetrics-only: serve it (plus the
            # `# EOF` trailer) only to scrapers that negotiate for it.
            accept = self.headers.get("Accept", "") or ""
            openmetrics = "application/openmetrics-text" in accept
            body = to_prometheus(
                self.snapshot_fn(), self.prefix, openmetrics=openmetrics
            ).encode()
            content_type = (
                OPENMETRICS_CONTENT_TYPE if openmetrics
                else PROMETHEUS_CONTENT_TYPE
            )
            self._reply(200, body, content_type)
        elif path == "/healthz":
            health: Mapping[str, Any] = {"status": "ok"}
            if self.health_fn is not None:
                health = self.health_fn()
            body = json.dumps(dict(health)).encode()
            self._reply(200, body, "application/json")
        elif path == "/introspect":
            if self.introspect_fn is None:
                self._reply(404, b"introspection not wired\n", "text/plain")
                return
            try:
                snapshot = dict(self.introspect_fn())
            except Exception as exc:  # noqa: BLE001 - observer endpoint
                body = json.dumps(
                    {"error": f"{type(exc).__name__}: {exc}"}
                ).encode()
                self._reply(500, body, "application/json")
                return
            body = json.dumps(snapshot, default=str).encode()
            self._reply(200, body, "application/json")
        else:
            self._reply(404, b"not found\n", "text/plain")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:  # noqa: D102 - silence stderr
        pass


class MetricsServer:
    """Background ``/metrics`` + ``/healthz`` endpoint over a snapshot fn.

    Parameters
    ----------
    snapshot_fn:
        Zero-argument callable returning the metrics snapshot dict —
        typically ``recorder.metrics.snapshot`` of the live recorder, so
        every scrape sees current values.
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`address` for the actual one).
    prefix:
        Metric name prefix (default ``repro_``).
    health_fn:
        Optional zero-argument callable returning the ``/healthz`` JSON
        body — the SLO monitor reports ``{"status": "degraded",
        "breached": [...]}`` here while objectives burn too hot. When
        omitted the endpoint answers a static ``{"status": "ok"}``.
    introspect_fn:
        Optional zero-argument callable returning the live-state
        snapshot served as JSON on ``/introspect`` — typically
        :meth:`repro.telemetry.inspect.RuntimeInspector.snapshot`. When
        omitted the endpoint answers 404.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Mapping[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro_",
        health_fn: Callable[[], Mapping[str, Any]] | None = None,
        introspect_fn: Callable[[], Mapping[str, Any]] | None = None,
    ) -> None:
        handler = type(
            "_BoundHandler", (_Handler,),
            {"snapshot_fn": staticmethod(snapshot_fn), "prefix": prefix,
             "health_fn": staticmethod(health_fn) if health_fn else None,
             "introspect_fn":
                 staticmethod(introspect_fn) if introspect_fn else None},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ephemeral ports)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
