"""Low-overhead span/event recorder for the real offload path.

The sim layer decomposes *virtual* time via :class:`repro.sim.trace.Tracer`;
this module does the same for *wall-clock* execution on the functional
backends. Design constraints, in order:

1. **Free when off.** Every instrumented call site funnels through the
   module-level :func:`span` / :func:`event` / :func:`count` helpers,
   which reduce to a single global read plus a cached no-op object while
   telemetry is disabled — the hot path allocates nothing and records
   nothing (guarded by ``tests/telemetry/test_overhead.py``).
2. **Cheap when on.** Timestamps come from :func:`time.perf_counter_ns`;
   finished spans append to a bounded ring (:class:`collections.deque`
   with ``maxlen``), so a long soak cannot eat the heap — old records are
   dropped and counted, never grown.
3. **Thread-safe.** Appends are locked; span nesting is tracked per
   thread, so concurrent offloads interleave correctly in the trace.

Spans nest: a span opened while another is active records it as its
parent, which is how the exporters reconstruct the
serialize -> enqueue -> transport -> execute -> reply -> deserialize
flame of one offload. Use the module like::

    from repro.telemetry import recorder as telemetry

    telemetry.enable()
    with telemetry.span("offload.sync", node=1):
        ...
    records = telemetry.get().records()
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.telemetry import context as trace_context
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import KernelProfiler

__all__ = [
    "EventRecord",
    "Recorder",
    "SpanRecord",
    "count",
    "current_span_id",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "get",
    "observe",
    "span",
]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span: a named, attributed stretch of wall time."""

    name: str
    category: str
    start_ns: int
    duration_ns: int
    span_id: int
    parent_id: int
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    #: 32-char hex id of the distributed trace this span belongs to
    #: ("" when recorded outside any trace). Spans of one offload share
    #: it across processes; see :mod:`repro.telemetry.context`.
    trace_id: str = ""

    kind = "span"

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One instantaneous occurrence (fault injected, retry, transition)."""

    name: str
    category: str
    ts_ns: int
    span_id: int
    parent_id: int
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Distributed-trace id, as on :class:`SpanRecord`.
    trace_id: str = ""

    kind = "event"


class _NoopSpan:
    """The disabled-path span: a shared, stateless context manager."""

    __slots__ = ()

    span_id = 0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self


#: Singleton handed out by :func:`span` while telemetry is disabled.
NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span; created by :meth:`Recorder.span`, closed by ``with``."""

    __slots__ = ("_recorder", "name", "category", "attrs", "span_id",
                 "parent_id", "_start_ns")

    def __init__(self, recorder: "Recorder", name: str, category: str,
                 attrs: dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.category = category
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self._start_ns = 0

    def set(self, key: str, value: Any) -> "_Span":
        """Attach an attribute mid-span (e.g. byte counts known late)."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        stack = recorder._stack()
        if stack:
            self.parent_id = stack[-1]
        else:
            # Top of the local stack: adopt the distributed trace's
            # remote parent (the host span that built the message this
            # process is executing), if one is active.
            ctx = trace_context.current()
            self.parent_id = ctx.span_id if ctx is not None else 0
        self.span_id = recorder._next_id()
        stack.append(self.span_id)
        self._start_ns = recorder._clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        recorder = self._recorder
        end_ns = recorder._clock()
        stack = recorder._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        ctx = trace_context.current()
        if ctx is not None and not ctx.sampled:
            # Unsampled trace: never touches the span ring. With a tail
            # pipeline (the issuing host) the finished span is folded
            # into aggregates and staged pending the completion verdict;
            # without one (the execute-side target) it costs nothing.
            pipeline = recorder.pipeline
            if pipeline is None:
                return False
            record = SpanRecord(
                name=self.name,
                category=self.category,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
                span_id=self.span_id,
                parent_id=self.parent_id,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
                trace_id=ctx.trace_id_hex,
            )
            recorder._fold_span(record)
            pipeline.stage(record)
            return False
        recorder._append(SpanRecord(
            name=self.name,
            category=self.category,
            start_ns=self._start_ns,
            duration_ns=end_ns - self._start_ns,
            span_id=self.span_id,
            parent_id=self.parent_id,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=self.attrs,
            trace_id=trace_context.current_trace_id_hex(),
        ))
        return False


class Recorder:
    """Thread-safe, ring-buffered span/event store.

    Parameters
    ----------
    capacity:
        Maximum retained records; older ones are dropped (and counted in
        :attr:`dropped`) once the ring wraps.
    clock_ns:
        Injectable nanosecond clock (tests pass a fake).
    """

    def __init__(self, capacity: int = 65536,
                 clock_ns: Any = time.perf_counter_ns) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock_ns
        self._ring: deque[SpanRecord | EventRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._recorded = 0
        #: Metric instruments riding along with the trace.
        self.metrics = MetricsRegistry()
        #: Per-kernel continuous profiles, fed by every completed
        #: offload through :func:`repro.telemetry.sampling.complete_offload`.
        self.profiles = KernelProfiler()
        #: Head sampler consulted by the runtime when minting a trace
        #: (``None`` means record everything, the pre-sampling default).
        self.sampler: Any = None
        #: Tail-retention pipeline staging unsampled traces (``None``
        #: on execute-side processes, where unsampled spans are skipped).
        self.pipeline: Any = None
        #: SLO burn-rate monitor fed by span folds and completions.
        self.slo: Any = None
        #: In-process time-series store + anomaly detector
        #: (:class:`repro.telemetry.tsdb.Tsdb`); ``None`` keeps history
        #: off — consumers probe with ``getattr(recorder, "tsdb", None)``.
        self.tsdb: Any = None
        # Per-phase histogram cache: _fold_span runs for every span of
        # every offload, so the registry lookup (lock + dict) is paid
        # once per phase name, not once per span.
        self._phase_hists: dict[str, Any] = {}
        #: Clock reading (ns) at the recorder's creation; exporters use
        #: it as the zero point of the trace timeline.
        self.epoch_ns = self._clock()

    # -- recording ---------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _next_id(self) -> int:
        """Process-unique record id: ``pid`` in the high bits.

        Span ids cross process boundaries (the active-message header
        carries the sender's span id as the remote parent, and a TCP
        target's records merge into the host trace), so two processes
        must never mint the same id — which a forked server would do if
        ids were a bare counter, since fork copies the counter state.
        Linux pids fit in 22 bits (``pid_max`` <= 4194304); 40 bits of
        counter keeps the combined id well inside a signed 64-bit int.
        """
        return (os.getpid() << 40) | next(self._ids)

    def _fold_span(self, record: SpanRecord) -> None:
        """Fold a finished span into the aggregate consumers.

        Runs for every span — ring-bound or pipeline-staged — so the
        per-phase latency distributions (live-queryable through the
        metrics snapshot and ``/metrics``) and the SLO windows never
        have sampling error.
        """
        hist = self._phase_hists.get(record.name)
        if hist is None:
            # Exemplars on: phase folds are the one place a duration and
            # its trace id meet, so each fat bucket keeps a live link to
            # the most recent trace that landed in it.
            hist = self.metrics.log_histogram("phase." + record.name,
                                              exemplars=True)
            self._phase_hists[record.name] = hist
        hist.observe(record.duration_ns / 1e9, trace_id=record.trace_id or None)
        if self.slo is not None:
            self.slo.observe_phase(record.name, record.duration_ns,
                                   error="error" in record.attrs)

    def _append(self, record: SpanRecord | EventRecord) -> None:
        if record.kind == "span":
            self._fold_span(record)
        with self._lock:
            self._ring.append(record)
            self._recorded += 1

    def span(self, name: str, category: str = "offload",
             **attrs: Any) -> "_Span | _NoopSpan":
        """Open a span; finish it by leaving the ``with`` block.

        Inside an unsampled trace on a process with no tail pipeline
        (the execute-side target), the span could never be kept, so the
        no-op singleton is returned and the whole enter/exit cost — id
        allocation, clock reads, record construction — vanishes. That
        is what the v2 header's ``sampled`` flag buys the target.
        """
        ctx = trace_context.current()
        if ctx is not None and not ctx.sampled and self.pipeline is None:
            return NOOP_SPAN
        return _Span(self, name, category, attrs)

    def event(self, name: str, category: str = "offload",
              **attrs: Any) -> None:
        """Record an instantaneous event at the current time.

        Inside an unsampled trace the event follows the trace's fate:
        staged with the tail pipeline when one is installed (so a
        retained outlier keeps its ``fault.injected`` breadcrumbs),
        skipped otherwise.
        """
        ctx = trace_context.current()
        stack = self._stack()
        if stack:
            parent_id = stack[-1]
        else:
            parent_id = ctx.span_id if ctx is not None else 0
        if ctx is not None and not ctx.sampled:
            pipeline = self.pipeline
            if pipeline is None:
                return
            pipeline.stage(EventRecord(
                name=name,
                category=category,
                ts_ns=self._clock(),
                span_id=self._next_id(),
                parent_id=parent_id,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=attrs,
                trace_id=ctx.trace_id_hex,
            ))
            return
        self._append(EventRecord(
            name=name,
            category=category,
            ts_ns=self._clock(),
            span_id=self._next_id(),
            parent_id=parent_id,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=attrs,
            trace_id=trace_context.current_trace_id_hex(),
        ))

    def force_event(self, name: str, category: str = "slo",
                    **attrs: Any) -> None:
        """Record an event bypassing the sampling gate.

        Alert-grade events (``telemetry.slo_breach``) must land in the
        ring even when raised mid-flight inside an unsampled trace —
        they describe the aggregate stream, not one trace, so they carry
        no trace id and never ride the tail pipeline.
        """
        self._append(EventRecord(
            name=name,
            category=category,
            ts_ns=self._clock(),
            span_id=self._next_id(),
            parent_id=0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=attrs,
            trace_id="",
        ))

    def ingest(self, records: "list[SpanRecord | EventRecord]") -> None:
        """Merge records produced elsewhere (e.g. a target process)."""
        with self._lock:
            for record in records:
                self._ring.append(record)
                self._recorded += 1

    # -- queries -----------------------------------------------------------
    def records(self) -> list[SpanRecord | EventRecord]:
        """Snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._ring)

    def spans(self, prefix: str = "") -> list[SpanRecord]:
        """Retained spans whose name starts with ``prefix``."""
        return [r for r in self.records()
                if r.kind == "span" and r.name.startswith(prefix)]

    def events(self, prefix: str = "") -> list[EventRecord]:
        """Retained events whose name starts with ``prefix``."""
        return [r for r in self.records()
                if r.kind == "event" and r.name.startswith(prefix)]

    def iter_records(self) -> Iterator[SpanRecord | EventRecord]:
        return iter(self.records())

    @property
    def recorded(self) -> int:
        """Total records ever appended (including dropped ones)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Records lost to ring wrap-around."""
        with self._lock:
            return max(0, self._recorded - len(self._ring))

    def current_span_id(self) -> int:
        """Id of the innermost open span on this thread (0 if none)."""
        stack = self._stack()
        return stack[-1] if stack else 0

    def clear(self) -> None:
        """Drop all retained records (keeps metrics and the id counter)."""
        with self._lock:
            self._ring.clear()

    def drain(self) -> list[SpanRecord | EventRecord]:
        """Atomically take and clear the retained records."""
        with self._lock:
            records = list(self._ring)
            self._ring.clear()
            return records


# --------------------------------------------------------------------------
# Module-level switchboard: the single global read every call site pays.
# --------------------------------------------------------------------------

_RECORDER: Recorder | None = None


def enable(capacity: int = 65536, *, recorder: Recorder | None = None) -> Recorder:
    """Turn telemetry on (idempotent); returns the active recorder.

    ``recorder`` installs an externally built recorder (tests inject fake
    clocks this way); otherwise a fresh one with ``capacity`` is created.
    Re-enabling while already enabled keeps the existing recorder.
    """
    global _RECORDER
    if _RECORDER is None:
        _RECORDER = recorder if recorder is not None else Recorder(capacity)
    return _RECORDER


def disable() -> Recorder | None:
    """Turn telemetry off; returns the detached recorder (for export)."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _RECORDER is not None


def get() -> Recorder | None:
    """The active recorder, or ``None`` while disabled."""
    return _RECORDER


def span(name: str, category: str = "offload", **attrs: Any):
    """Module-level span helper: a no-op singleton while disabled."""
    recorder = _RECORDER
    if recorder is None:
        return NOOP_SPAN
    return recorder.span(name, category, **attrs)


def event(name: str, category: str = "offload", **attrs: Any) -> None:
    """Module-level event helper: does nothing while disabled."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.event(name, category, **attrs)


def count(name: str, amount: int = 1) -> None:
    """Bump a counter metric (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.metrics.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge metric (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Feed a histogram metric (no-op while disabled)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.metrics.histogram(name).observe(value)


def current_span_id() -> int:
    """Innermost open span id on this thread (0 when disabled/none)."""
    recorder = _RECORDER
    if recorder is None:
        return 0
    return recorder.current_span_id()
