"""Live runtime introspection: one merged host + target state snapshot.

The metrics registry answers "how much, how fast"; the flight recorder
answers "what just happened". This module answers the operator's third
question — **"what is it doing right now?"** — by merging, at call
time:

* host-side state straight off a :class:`~repro.offload.runtime.Runtime`
  (in-flight window occupancy with per-handle labels, QoS queue depths,
  health-monitor verdicts, hedger counters, transport-depth stats);
* target-side state fetched live over the wire via the backends'
  ``OP_INTROSPECT`` roundtrip (worker-pool depth, executed-message
  count, shm ring cursors/occupancy) — every transport answers the same
  dict shape, so nothing here is per-backend;
* the flight recorder's ring counters, so a wedged process can be told
  apart from an idle one ("nothing noted for minutes" vs "sheds every
  second").

The snapshot is plain JSON-serializable data. It is surfaced on the
metrics server as ``GET /introspect`` (see
:class:`~repro.telemetry.promexport.MetricsServer`) and rendered live
by ``python -m repro.telemetry.top``.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.telemetry import flightrecorder

__all__ = ["RuntimeInspector", "SNAPSHOT_SCHEMA_VERSION"]

#: Bump when the snapshot shape changes incompatibly (the ``top`` CLI
#: checks it before rendering).
SNAPSHOT_SCHEMA_VERSION = 1


class RuntimeInspector:
    """Builds merged live-state snapshots for one runtime.

    Parameters
    ----------
    runtime:
        The :class:`~repro.offload.runtime.Runtime` to introspect.
    probe_timeout:
        Deadline for the target-side ``OP_INTROSPECT`` roundtrip. Kept
        short by default: introspection is an observer, it must not
        hang alongside the thing it observes.
    """

    def __init__(self, runtime: Any, *, probe_timeout: float = 1.0) -> None:
        self.runtime = runtime
        self.probe_timeout = probe_timeout

    # -- host side ---------------------------------------------------------
    def _window_snapshot(self) -> dict[str, Any]:
        window = self.runtime.backend.window
        handles = [
            {"corr": handle.correlation_id, "label": handle.label}
            for handle in window.handles()
        ]
        return {
            "in_flight": window.in_flight,
            "limit": window.limit,
            "handles": handles,
        }

    def host_snapshot(self) -> dict[str, Any]:
        """Everything knowable without touching the wire."""
        runtime = self.runtime
        host: dict[str, Any] = {
            "pid": os.getpid(),
            "window": self._window_snapshot(),
            "transport": runtime.backend.stats(),
        }
        if runtime.admission is not None:
            host["qos"] = {
                "admission": runtime.admission.snapshot(),
                "window": runtime._fair_window.snapshot()
                if runtime._fair_window is not None else {},
            }
        if runtime.monitor is not None:
            host["health"] = runtime.monitor.snapshot()
        hedger = runtime._hedger
        if hedger is not None:
            host["hedging"] = hedger.snapshot()
        return host

    # -- target side -------------------------------------------------------
    def target_snapshot(self) -> dict[str, Any] | None:
        """The target's live state, or an ``error`` dict when unreachable.

        ``None`` only when the backend has no introspection support at
        all (predates ``OP_INTROSPECT``).
        """
        probe = getattr(self.runtime.backend, "introspect_target", None)
        if probe is None:
            return None
        try:
            return probe(timeout=self.probe_timeout)
        except Exception as exc:  # noqa: BLE001 - observers must not raise
            return {
                "role": "target",
                "error": f"{type(exc).__name__}: {exc}",
            }

    # -- time series -------------------------------------------------------
    #: Non-target series always included in the tsdb section when they
    #: exist — the headline "is it moving" signals.
    TSDB_HEADLINES = ("offload.issued", "future.settled",
                      "reactor.loop_lag_us")

    def tsdb_snapshot(self, *, window: float = 60.0,
                      points: int = 30) -> dict[str, Any] | None:
        """Recent-history digest from the in-process TSDB, if installed.

        One entry per ``target.*`` series plus the headline counters:
        latest value, per-second :meth:`~repro.telemetry.tsdb.
        TimeSeriesStore.rate` over ``window``, and the last ``points``
        raw values (the ``top`` CLI renders these as sparklines).
        """
        from repro.telemetry import recorder as telemetry

        recorder = telemetry.get()
        tsdb = getattr(recorder, "tsdb", None) if recorder is not None \
            else None
        if tsdb is None:
            return None
        store = tsdb.store
        names = [n for n in store.names()
                 if n.startswith("target.") or n in self.TSDB_HEADLINES]
        series: dict[str, Any] = {}
        for name in names:
            samples = store.range(name, window)
            if not samples:
                continue
            series[name] = {
                "last": samples[-1][1],
                "rate": round(store.rate(name, window), 6),
                "points": [value for _, value in samples[-points:]],
            }
        return {
            "samples": tsdb.samples,
            "interval": tsdb.interval,
            "series": series,
            "anomalies": tsdb.detector.anomalies(),
        }

    # -- the merged snapshot -----------------------------------------------
    def snapshot(self, *, probe_target: bool = True) -> dict[str, Any]:
        """One merged, JSON-serializable live-state snapshot.

        ``probe_target=False`` skips the wire roundtrip — used when the
        caller only wants host-side state (e.g. the target is known
        dead and the question is what the host is still holding).
        """
        flight = flightrecorder.get()
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "time_ns": time.time_ns(),
            "host": self.host_snapshot(),
            "target": self.target_snapshot() if probe_target else None,
            "tsdb": self.tsdb_snapshot(),
            "flight": {
                "noted": flight.noted,
                "dropped": flight.dropped,
                "dumps": [str(path) for path in flight.dumps],
                "crash_dir": str(flight.crash_dir)
                if flight.crash_dir is not None else None,
            },
        }
