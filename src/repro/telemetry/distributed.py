"""Cross-process trace assembly: clock alignment and critical paths.

A distributed trace (one ``trace_id`` minted at ``offload()``, carried in
the version-2 active-message header) spans two processes whose
``perf_counter_ns`` clocks need not agree — a remote target has its own
epoch, and even a forked local server drifts once NTP steps in. This
module turns the two half-traces into one timeline:

1. :class:`ClockSync` estimates the target->host clock offset with the
   classic ping-pong (Cristian / NTP) estimator: the target timestamp is
   assumed to sit at the midpoint of the request/reply round trip, and
   the round with the smallest RTT bounds the error tightest.
2. :func:`align_records` rewrites target-side records onto the host
   clock using that offset.
3. :func:`causal_offset_bounds` / :func:`merge_traces` clamp the
   statistical estimate with *message-order* ground truth: an execute
   span cannot start before the host serialized the message, nor end
   after the host received the reply. Clamping guarantees the merged
   timeline is causally monotone even when the ping-pong estimate is
   noisy (on localhost the noise can exceed the one-way latency).
4. :func:`group_by_trace` and :func:`critical_path` break a merged
   trace into its per-message phase sequence — serialize, enqueue,
   execute, reply, deserialize, and the uncovered "(wait)" stretches in
   between, which is where the wire time lives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.telemetry.recorder import EventRecord, SpanRecord

__all__ = [
    "ClockSync",
    "align_records",
    "causal_offset_bounds",
    "critical_path",
    "group_by_trace",
    "merge_traces",
    "trace_summary",
]

Record = SpanRecord | EventRecord

#: A clock probe: returns ``(t0_host_ns, t_target_ns, t1_host_ns)`` for
#: one ping-pong round — host clock before send, target clock at the
#: server, host clock at reply receipt.
ClockProbe = Callable[[], tuple[int, int, int]]


@dataclass(frozen=True, slots=True)
class ClockSync:
    """Target-to-host clock mapping: ``host_ns = target_ns + offset_ns``.

    ``rtt_ns`` is the round-trip time of the best (minimum-RTT) probe —
    the estimate's error is bounded by half of it. ``samples`` counts the
    probe rounds that produced the estimate; zero means identity (no
    estimation ran, e.g. a backend whose target shares the host clock).
    """

    offset_ns: int = 0
    rtt_ns: int = 0
    samples: int = 0

    def to_host_ns(self, target_ns: int) -> int:
        """Map one target-clock reading onto the host clock."""
        return target_ns + self.offset_ns

    @classmethod
    def identity(cls) -> "ClockSync":
        """No-op mapping (same clock on both sides)."""
        return cls()

    @classmethod
    def estimate(cls, probe: ClockProbe, rounds: int = 8) -> "ClockSync":
        """Ping-pong the target ``rounds`` times; keep the best round.

        Each round gives ``offset = t_target - (t0 + t1) / 2`` with error
        at most ``rtt / 2``; the minimum-RTT round is the tightest, so
        its offset wins (NTP's selection rule, without the clock
        discipline loop).
        """
        if rounds < 1:
            raise ValueError(f"need at least one probe round, got {rounds}")
        best_rtt: int | None = None
        best_offset = 0
        for _ in range(rounds):
            t0, t_target, t1 = probe()
            rtt = t1 - t0
            if rtt < 0:
                raise ValueError("clock probe went backwards (t1 < t0)")
            if best_rtt is None or rtt < best_rtt:
                best_rtt = rtt
                # host midpoint is the best guess of when the target
                # stamped its clock: offset maps target -> host.
                best_offset = (t0 + t1) // 2 - t_target
        assert best_rtt is not None
        return cls(offset_ns=best_offset, rtt_ns=best_rtt, samples=rounds)


def align_records(records: Iterable[Record], offset_ns: int) -> list[Record]:
    """Shift records onto the host clock (``+offset_ns`` on timestamps)."""
    if offset_ns == 0:
        return list(records)
    shifted: list[Record] = []
    for record in records:
        if record.kind == "span":
            shifted.append(
                dataclasses.replace(record, start_ns=record.start_ns + offset_ns)
            )
        else:
            shifted.append(
                dataclasses.replace(record, ts_ns=record.ts_ns + offset_ns)
            )
    return shifted


#: Host-side span names that run strictly *before* the message is on the
#: wire / *after* the reply is back — the causal fence posts.
_HOST_BEFORE = ("offload.serialize", "offload.enqueue")
_HOST_AFTER = ("offload.reply", "offload.deserialize")
#: Target-side span marking remote execution of one message.
_TARGET_EXECUTE = "offload.execute"


def causal_offset_bounds(
    host_records: Iterable[Record], target_records: Iterable[Record]
) -> tuple[int | None, int | None]:
    """Message-order bounds ``(lo, hi)`` on the target->host offset.

    For every trace seen on both sides: the (aligned) execute span must
    start no earlier than the host finished serializing the message, and
    must end no later than the host finished reading the reply. Each
    matched pair tightens the admissible offset interval; ``None`` means
    unbounded on that side (no matching span found).
    """
    host_before: dict[str, int] = {}
    host_after: dict[str, int] = {}
    for record in host_records:
        if record.kind != "span" or not record.trace_id:
            continue
        if record.name in _HOST_BEFORE:
            prev = host_before.get(record.trace_id)
            if prev is None or record.start_ns < prev:
                host_before[record.trace_id] = record.start_ns
        elif record.name in _HOST_AFTER:
            prev = host_after.get(record.trace_id)
            if prev is None or record.end_ns > prev:
                host_after[record.trace_id] = record.end_ns
    lo: int | None = None
    hi: int | None = None
    for record in target_records:
        if record.kind != "span" or record.name != _TARGET_EXECUTE:
            continue
        sent = host_before.get(record.trace_id)
        if sent is not None:
            bound = sent - record.start_ns
            if lo is None or bound > lo:
                lo = bound
        received = host_after.get(record.trace_id)
        if received is not None:
            bound = received - record.end_ns
            if hi is None or bound < hi:
                hi = bound
    return lo, hi


def merge_traces(
    host_records: Iterable[Record],
    target_records: Iterable[Record],
    sync: ClockSync | None = None,
) -> list[Record]:
    """One causally monotone timeline from host + target half-traces.

    The ping-pong estimate (``sync``) is clamped into the causal bounds
    derived from the records themselves, so an execute span never
    renders before its send nor after its reply receipt — even when the
    statistical estimate is off by more than the one-way latency. With
    inconsistent bounds (lo > hi: overlapping spans from clock noise
    below resolution) the midpoint is used. Records come back sorted by
    host-clock timestamp.
    """
    host = list(host_records)
    target = list(target_records)
    offset = sync.offset_ns if sync is not None else 0
    lo, hi = causal_offset_bounds(host, target)
    if lo is not None and hi is not None and lo > hi:
        offset = (lo + hi) // 2
    else:
        if lo is not None and offset < lo:
            offset = lo
        if hi is not None and offset > hi:
            offset = hi
    merged = host + align_records(target, offset)
    merged.sort(key=_record_start)
    return merged


def _record_start(record: Record) -> int:
    return record.start_ns if record.kind == "span" else record.ts_ns


def group_by_trace(records: Iterable[Record]) -> dict[str, list[Record]]:
    """Records bucketed by ``trace_id`` (untraced ones are skipped)."""
    groups: dict[str, list[Record]] = {}
    for record in records:
        if record.trace_id:
            groups.setdefault(record.trace_id, []).append(record)
    for group in groups.values():
        group.sort(key=_record_start)
    return groups


def critical_path(records: Iterable[Record]) -> list[dict[str, Any]]:
    """Phase-by-phase walk of one trace's records.

    Takes the *leaf* spans of one trace in timeline order — a leaf has
    no child span within its own process; the cross-process link
    (execute parenting to the host's serialize span) does not demote the
    host span, since the two run in different processes and both are
    real phases. The walk attributes every nanosecond between the first
    leaf's start and the last leaf's end either to a leaf phase or to an
    uncovered ``(wait)`` segment — on a merged two-process trace the
    waits are the wire transfers and queueing. When two leaves overlap
    (host ``enqueue`` still closing while the target already executes),
    the later-starting one takes over at its start: downstream progress
    is the critical path. Returns dicts with ``phase``, ``start_ns``,
    ``duration_ns``, ``pid``.
    """
    spans = sorted(
        (r for r in records if r.kind == "span"), key=lambda s: s.start_ns
    )
    if not spans:
        return []
    by_id = {s.span_id: s for s in spans}
    local_parents = set()
    for span in spans:
        parent = by_id.get(span.parent_id)
        if parent is not None and parent.pid == span.pid:
            local_parents.add(parent.span_id)
    leaves = [s for s in spans if s.span_id not in local_parents]
    t_end = max(s.end_ns for s in spans)
    segments: list[dict[str, Any]] = []
    cursor = leaves[0].start_ns
    for index, span in enumerate(leaves):
        if span.start_ns > cursor:
            segments.append({
                "phase": "(wait)",
                "start_ns": cursor,
                "duration_ns": span.start_ns - cursor,
                "pid": 0,
            })
            cursor = span.start_ns
        end = span.end_ns
        if index + 1 < len(leaves):
            # Hand over to the next phase the moment it starts.
            end = min(end, max(leaves[index + 1].start_ns, cursor))
        if end > cursor:
            segments.append({
                "phase": span.name,
                "start_ns": cursor,
                "duration_ns": end - cursor,
                "pid": span.pid,
            })
            cursor = end
    if cursor < t_end:
        segments.append({
            "phase": "(wait)",
            "start_ns": cursor,
            "duration_ns": t_end - cursor,
            "pid": 0,
        })
    return segments


def trace_summary(records: Iterable[Record]) -> dict[str, Any]:
    """Per-message digest of one trace: total, phases, processes."""
    group = list(records)
    spans = [r for r in group if r.kind == "span"]
    events = [r for r in group if r.kind == "event"]
    path = critical_path(group)
    total_ns = 0
    if spans:
        total_ns = max(s.end_ns for s in spans) - min(s.start_ns for s in spans)
    return {
        "trace_id": group[0].trace_id if group else "",
        "total_ns": total_ns,
        "spans": len(spans),
        "events": len(events),
        "pids": sorted({r.pid for r in group}),
        "critical_path": path,
    }
