"""Distributed trace context — the causal thread through one offload.

One offload crosses a process boundary: the host serializes and sends,
the target executes, the host decodes the reply. PR 2's recorder gave
each process its own span tree, but nothing tied the two trees together.
This module is that tie: a W3C-``traceparent``-style context
(128-bit ``trace_id``, 64-bit parent ``span_id``, a sampled flag) that is

* **generated at** ``offload()`` (:meth:`repro.offload.runtime.Runtime.async_`
  creates one per offload unless the caller already activated a trace);
* **propagated in the active-message header** (version-2 header fields,
  see :mod:`repro.ham.message`) — the header is the one structure that
  always crosses the boundary, on every backend;
* **activated on the target** by
  :func:`repro.ham.execution.execute_message`, so target-side spans
  record the same ``trace_id`` and parent themselves to the host-side
  span that produced the message bytes.

The context rides a :class:`contextvars.ContextVar`, so concurrent
offloads on different threads (or tasks) do not leak into each other.
While telemetry is disabled no context is ever created — the hot path
stays free.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from dataclasses import dataclass, replace
from typing import Iterator

__all__ = [
    "FLAG_SAMPLED",
    "TraceContext",
    "activate",
    "current",
    "current_trace_id_hex",
    "new_trace",
]

#: Header/traceparent flag bit: this trace is recorded.
FLAG_SAMPLED = 0x01

_TRACEPARENT_VERSION = "00"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One causal trace: identity plus the current parent span.

    Attributes
    ----------
    trace_id:
        128-bit trace identifier, non-zero. Every span and event of one
        offload — host side and target side — carries it.
    span_id:
        64-bit id of the parent span for the *next* hop (0 at the trace
        root). On the wire this is the host span that built the message.
    sampled:
        The head sampler's verdict
        (:class:`repro.telemetry.sampling.HeadSampler`). An unsampled
        context still propagates identity — every process deciding from
        the same trace id agrees, and the tail pipeline needs the id to
        match staged spans with their completion — but its spans bypass
        the recorder ring (staged host-side, skipped target-side).
    """

    trace_id: int
    span_id: int = 0
    sampled: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.trace_id < 1 << 128:
            raise ValueError(f"trace_id must be a non-zero 128-bit int")
        if not 0 <= self.span_id < 1 << 64:
            raise ValueError(f"span_id must fit in 64 bits, got {self.span_id}")

    @property
    def trace_id_hex(self) -> str:
        """The trace id as the 32-char lowercase hex of ``traceparent``."""
        return f"{self.trace_id:032x}"

    @property
    def flags(self) -> int:
        """The header/traceparent flag byte."""
        return FLAG_SAMPLED if self.sampled else 0

    def child(self, span_id: int) -> "TraceContext":
        """The same trace re-parented under ``span_id`` (next hop)."""
        return replace(self, span_id=span_id)

    # -- W3C-style text encoding -------------------------------------------
    def to_traceparent(self) -> str:
        """Encode as a ``traceparent`` string: ``00-<trace>-<span>-<flags>``."""
        return (
            f"{_TRACEPARENT_VERSION}-{self.trace_id:032x}"
            f"-{self.span_id:016x}-{self.flags:02x}"
        )

    @classmethod
    def from_traceparent(cls, value: str) -> "TraceContext":
        """Decode a string produced by :meth:`to_traceparent`.

        Raises
        ------
        ValueError
            On malformed input (wrong field count/width, zero trace id).
        """
        parts = value.strip().split("-")
        if len(parts) != 4:
            raise ValueError(f"traceparent needs 4 fields, got {len(parts)}")
        version, trace_hex, span_hex, flags_hex = parts
        if len(version) != 2 or len(trace_hex) != 32 or len(span_hex) != 16:
            raise ValueError(f"malformed traceparent {value!r}")
        return cls(
            trace_id=int(trace_hex, 16),
            span_id=int(span_hex, 16),
            sampled=bool(int(flags_hex, 16) & FLAG_SAMPLED),
        )


#: The active trace of the current thread/task (None outside any trace).
_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def new_trace(*, sampled: bool = True) -> TraceContext:
    """A fresh root context with a random non-zero 128-bit trace id."""
    trace_id = 0
    while trace_id == 0:
        trace_id = int.from_bytes(os.urandom(16), "big")
    return TraceContext(trace_id=trace_id, sampled=sampled)


def current() -> TraceContext | None:
    """The active trace context, or ``None`` outside any trace."""
    return _CURRENT.get()


def current_trace_id_hex() -> str:
    """Hex trace id of the active *sampled* context ("" outside one)."""
    ctx = _CURRENT.get()
    if ctx is None or not ctx.sampled:
        return ""
    return ctx.trace_id_hex


@contextlib.contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` as the active trace for the ``with`` block.

    ``activate(None)`` is a no-op passthrough, so call sites can write
    ``with activate(maybe_ctx):`` without branching.
    """
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
