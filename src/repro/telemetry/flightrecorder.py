"""Black-box flight recorder: always-on evidence for post-mortems.

The span recorder (:mod:`repro.telemetry.recorder`) is opt-in and
sampled — exactly wrong for the question "what was the runtime doing
just before it died?". This module keeps a second, much smaller ring
that is **always on**: every control-plane transition (window grant,
admission rejection, load shed, health flip, retry, transport error)
drops one tuple into a bounded lossy :class:`collections.deque`,
independent of whether telemetry is enabled or any trace is sampled.
Steady-state cost is one attribute check plus one deque append per
noted event — no locks, no allocation beyond the tuple.

On a *trigger* — an offload error escaping to the caller, peer-death
detection in a transport, an SLO breach, ``SIGUSR2``, or process exit
with offloads still in flight — the recorder dumps a post-mortem
bundle to the configured crash directory:

``crash-<pid>-<seq>-<reason>/``
    * ``manifest.json`` — reason, pid, wall/mono clocks, ring stats;
    * ``events.jsonl``  — the recent events, one telemetry-JSONL event
      row per line (``repro.telemetry.report`` reads it directly);
    * ``metrics.json``  — metrics snapshot (when telemetry is enabled)
      plus a ``transport`` section — reactor loop-lag stats and
      coalescer flush-reason counters from every attached runtime —
      that is captured even while the span recorder is off, so a
      post-mortem can see event-loop stalls;
    * ``timeseries.json`` — the in-process TSDB's recent history (last
      ``timeseries_window`` seconds of every series) when
      ``offload.init(telemetry={"tsdb": ...})`` installed one;
    * ``inflight.json`` — correlation ids still in flight per attached
      runtime, with window occupancy;
    * ``config.json``   — backend/policy/window configuration summary.

Dumping only happens once a crash directory is configured — via
:func:`configure`, ``offload.init(telemetry={"crash_dir": ...})`` or
the ``REPRO_CRASH_DIR`` environment variable — so importing the module
never writes to disk behind the application's back. Noting is on
regardless, so configuring a crash dir *after* an incident still
captures the events leading up to it.

Read a bundle back with :func:`load_bundle`, or render it with
``python -m repro.telemetry.report <bundle-dir>``.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import signal
import threading
import time
import weakref
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.offload.runtime import Runtime

__all__ = [
    "BUNDLE_CONFIG",
    "BUNDLE_EVENTS",
    "BUNDLE_INFLIGHT",
    "BUNDLE_MANIFEST",
    "BUNDLE_SCHEMA_VERSION",
    "BUNDLE_TIMESERIES",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "attach_runtime",
    "configure",
    "detach_runtime",
    "find_bundles",
    "get",
    "incident",
    "load_bundle",
    "note",
    "trigger",
]

#: Bundle file names (one directory per dump).
BUNDLE_MANIFEST = "manifest.json"
BUNDLE_EVENTS = "events.jsonl"
BUNDLE_METRICS = "metrics.json"
BUNDLE_INFLIGHT = "inflight.json"
BUNDLE_CONFIG = "config.json"
BUNDLE_TIMESERIES = "timeseries.json"

#: Seconds of TSDB history persisted into ``timeseries.json``.
DEFAULT_TIMESERIES_WINDOW = 300.0

#: Bump when the on-disk bundle shape changes incompatibly.
BUNDLE_SCHEMA_VERSION = 1

#: Default ring size: generous for a control-plane event stream (the
#: data plane never notes here), tiny next to the telemetry ring.
DEFAULT_CAPACITY = 2048

#: Repeated triggers within this many seconds coalesce into one bundle
#: (a dying peer fails every pending future at once; one bundle tells
#: the whole story).
DEFAULT_DEBOUNCE = 1.0


def _find_key(tree: Any, key: str) -> Any:
    """First value under ``key`` anywhere in a nested stats dict.

    Backend stats nest differently per transport (the fan-out backend
    wraps its members under ``inner``, the TCP backend keeps the
    coalescer under ``coalescer``); a depth-first search keeps the
    bundle writer agnostic to that shape.
    """
    if isinstance(tree, Mapping):
        if key in tree:
            return tree[key]
        for value in tree.values():
            found = _find_key(value, key)
            if found is not None:
                return found
    elif isinstance(tree, (list, tuple)):
        for value in tree:
            found = _find_key(value, key)
            if found is not None:
                return found
    return None


class FlightRecorder:
    """Always-on bounded event ring with crash-bundle dumping.

    Parameters
    ----------
    capacity:
        Ring size; older events are lost (lossy by design — recency is
        the point of a flight recorder).
    crash_dir:
        Directory bundles are written under; ``None`` (and no
        ``REPRO_CRASH_DIR`` in the environment) disables dumping while
        keeping the ring recording.
    debounce:
        Minimum seconds between dumps; triggers inside the window are
        counted in the next manifest instead of producing a bundle each.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        crash_dir: "str | Path | None" = None,
        *,
        debounce: float = DEFAULT_DEBOUNCE,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        if crash_dir is None:
            crash_dir = os.environ.get("REPRO_CRASH_DIR") or None
        self.crash_dir: Path | None = Path(crash_dir) if crash_dir else None
        self.debounce = debounce
        #: Seconds of TSDB history written to ``timeseries.json``.
        self.timeseries_window = DEFAULT_TIMESERIES_WINDOW
        self._ring: deque[tuple[int, str, dict[str, Any]]] = deque(
            maxlen=capacity
        )
        self._noted = 0
        self._seq = itertools.count(1)
        self._dump_lock = threading.Lock()
        self._last_dump = 0.0
        self._suppressed = 0
        self._dumps: list[Path] = []
        self._runtimes: "weakref.WeakSet[Runtime]" = weakref.WeakSet()

    # -- recording ---------------------------------------------------------
    def note(self, name: str, **attrs: Any) -> None:
        """Drop one event into the ring (the near-zero hot call)."""
        if not self.enabled:
            return
        self._ring.append((time.time_ns(), name, attrs))
        self._noted += 1

    def records(self) -> list[tuple[int, str, dict[str, Any]]]:
        """Snapshot of retained ``(ts_ns, name, attrs)``, oldest first."""
        return list(self._ring)

    @property
    def noted(self) -> int:
        """Total events ever noted (including ones lost to ring wrap)."""
        return self._noted

    @property
    def dropped(self) -> int:
        """Events lost to ring wrap-around."""
        return max(0, self._noted - len(self._ring))

    @property
    def dumps(self) -> list[Path]:
        """Bundles written so far, oldest first."""
        return list(self._dumps)

    def clear(self) -> None:
        """Drop all retained events (tests; keeps the counters)."""
        self._ring.clear()

    # -- runtime attachment ------------------------------------------------
    def attach(self, runtime: "Runtime") -> None:
        """Start including ``runtime`` in bundles (weakly referenced)."""
        self._runtimes.add(runtime)

    def detach(self, runtime: "Runtime") -> None:
        """Stop including ``runtime`` (clean shutdown is not a crash)."""
        self._runtimes.discard(runtime)

    def _inflight_snapshot(self) -> list[dict[str, Any]]:
        """Per-runtime in-flight table: the futures a crash would strand."""
        table: list[dict[str, Any]] = []
        for runtime in list(self._runtimes):
            try:
                window = runtime.backend.window
                table.append({
                    "backend": type(runtime.backend).__name__,
                    "in_flight": window.in_flight,
                    "limit": window.limit,
                    "correlation_ids": [
                        handle.correlation_id for handle in window.handles()
                    ],
                })
            except Exception as exc:  # noqa: BLE001 - crash path, best effort
                table.append({"error": f"{type(exc).__name__}: {exc}"})
        return table

    def _config_snapshot(self) -> list[dict[str, Any]]:
        """Enough configuration to interpret the bundle without the code."""
        configs: list[dict[str, Any]] = []
        for runtime in list(self._runtimes):
            try:
                entry: dict[str, Any] = {
                    "backend": type(runtime.backend).__name__,
                    "window_limit": runtime.backend.window.limit,
                    "qos": runtime.qos is not None,
                }
                policy = runtime.policy
                if policy is not None:
                    entry["policy"] = {
                        "deadline": policy.deadline,
                        "max_retries": policy.max_retries,
                        "failover": policy.failover,
                        "hedge": policy.hedge is not None,
                    }
                configs.append(entry)
            except Exception as exc:  # noqa: BLE001 - crash path, best effort
                configs.append({"error": f"{type(exc).__name__}: {exc}"})
        return configs

    def pending(self) -> int:
        """Offloads currently in flight across attached runtimes."""
        total = 0
        for runtime in list(self._runtimes):
            try:
                total += runtime.backend.window.in_flight
            except Exception:  # noqa: BLE001 - crash path, best effort
                pass
        return total

    # -- dumping -----------------------------------------------------------
    def trigger(self, reason: str, *, force: bool = False,
                **attrs: Any) -> Path | None:
        """Note ``reason`` and dump a bundle if a crash dir is configured.

        Returns the bundle path, or ``None`` when dumping is disabled or
        the trigger was coalesced into a recent bundle's debounce
        window (``force=True`` bypasses the debounce — used by the
        operator-initiated ``SIGUSR2`` path).
        """
        self.note("flight.trigger", reason=reason, **attrs)
        if self.crash_dir is None:
            return None
        now = time.monotonic()
        with self._dump_lock:
            if not force and now - self._last_dump < self.debounce:
                self._suppressed += 1
                return None
            self._last_dump = now
            return self._dump_locked(reason, attrs)

    def dump(self, reason: str, **attrs: Any) -> Path | None:
        """Unconditionally write a bundle (no debounce); ``trigger`` is
        the usual entry point."""
        if self.crash_dir is None:
            return None
        with self._dump_lock:
            self._last_dump = time.monotonic()
            return self._dump_locked(reason, attrs)

    def _dump_locked(self, reason: str, attrs: Mapping[str, Any]) -> Path:
        assert self.crash_dir is not None
        safe_reason = "".join(
            c if c.isalnum() or c in "-_" else "_" for c in reason
        ) or "unknown"
        bundle = (
            self.crash_dir
            / f"crash-{os.getpid()}-{next(self._seq)}-{safe_reason}"
        )
        bundle.mkdir(parents=True, exist_ok=True)
        events = self.records()
        pid = os.getpid()
        with (bundle / BUNDLE_EVENTS).open("w") as fh:
            for ts_ns, name, event_attrs in events:
                row = {
                    "type": "event",
                    "name": name,
                    "cat": "flight",
                    "ts_ns": ts_ns,
                    "span_id": 0,
                    "parent_id": 0,
                    "pid": pid,
                    "tid": 0,
                    "attrs": event_attrs,
                    "trace_id": "",
                }
                fh.write(json.dumps(row, default=str) + "\n")
        manifest = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "reason": reason,
            "attrs": {k: str(v) for k, v in attrs.items()},
            "pid": pid,
            "time_ns": time.time_ns(),
            "events": len(events),
            "noted": self._noted,
            "dropped": self.dropped,
            "suppressed_triggers": self._suppressed,
            "pending": self.pending(),
        }
        (bundle / BUNDLE_MANIFEST).write_text(
            json.dumps(manifest, indent=1, default=str)
        )
        (bundle / BUNDLE_INFLIGHT).write_text(
            json.dumps(self._inflight_snapshot(), indent=1, default=str)
        )
        (bundle / BUNDLE_CONFIG).write_text(
            json.dumps(self._config_snapshot(), indent=1, default=str)
        )
        metrics = self._metrics_snapshot()
        if metrics is not None:
            (bundle / BUNDLE_METRICS).write_text(
                json.dumps(metrics, indent=1, default=str)
            )
        series = self._timeseries_snapshot()
        if series is not None:
            (bundle / BUNDLE_TIMESERIES).write_text(
                json.dumps(series, default=str)
            )
        self._suppressed = 0
        self._dumps.append(bundle)
        return bundle

    def _metrics_snapshot(self) -> dict[str, Any] | None:
        # Imported lazily: the flight recorder must not pull the full
        # telemetry stack in at import time (it is always-on, the span
        # recorder is opt-in).
        from repro.telemetry import recorder as telemetry

        recorder = telemetry.get()
        snapshot: dict[str, Any] | None = None
        if recorder is not None:
            snapshot = recorder.metrics.snapshot()
        transport = self._transport_snapshot()
        if transport:
            if snapshot is None:
                snapshot = {}
            snapshot["transport"] = transport
        return snapshot

    def _transport_snapshot(self) -> list[dict[str, Any]]:
        """Reactor + coalescer state per attached runtime.

        Collected straight from ``backend.stats()`` — independent of the
        span recorder, so a bundle from an un-instrumented process still
        shows event-loop lag (``max_lag_us``) and why frames flushed.
        """
        entries: list[dict[str, Any]] = []
        for runtime in list(self._runtimes):
            try:
                stats = runtime.backend.stats()
            except Exception as exc:  # noqa: BLE001 - crash path, best effort
                entries.append({"error": f"{type(exc).__name__}: {exc}"})
                continue
            reactor = _find_key(stats, "reactor")
            flush_reasons = _find_key(stats, "flush_reasons")
            if reactor is None and flush_reasons is None:
                continue
            entries.append({
                "backend": type(runtime.backend).__name__,
                "reactor": reactor,
                "flush_reasons": flush_reasons,
            })
        return entries

    def _timeseries_snapshot(self) -> dict[str, Any] | None:
        from repro.telemetry import recorder as telemetry

        recorder = telemetry.get()
        tsdb = getattr(recorder, "tsdb", None) if recorder is not None else None
        if tsdb is None:
            return None
        try:
            return tsdb.store.to_json(window=self.timeseries_window)
        except Exception:  # noqa: BLE001 - crash path, best effort
            return None

    # -- process hooks -----------------------------------------------------
    def install_signal_handler(self) -> bool:
        """Dump on ``SIGUSR2`` (operator-initiated snapshot of a live,
        possibly wedged process). Returns False off the main thread,
        where signal handlers cannot be installed."""

        def _on_sigusr2(signum: int, frame: Any) -> None:
            self.trigger("sigusr2", force=True)

        try:
            signal.signal(signal.SIGUSR2, _on_sigusr2)
        except ValueError:  # not the main thread
            return False
        return True

    def _atexit_hook(self) -> None:
        pending = self.pending()
        if pending:
            self.trigger("atexit_pending", force=True, pending=pending)


# --------------------------------------------------------------------------
# Module-level singleton: always-on from import, configured lazily.
# --------------------------------------------------------------------------

_FLIGHT = FlightRecorder()
_ATEXIT_ARMED = False


def get() -> FlightRecorder:
    """The process-global flight recorder (always exists)."""
    return _FLIGHT


def note(name: str, **attrs: Any) -> None:
    """Record one control-plane event in the global ring."""
    _FLIGHT.note(name, **attrs)


def trigger(reason: str, *, force: bool = False, **attrs: Any) -> Path | None:
    """Trigger the global recorder (dumps only with a crash dir set)."""
    return _FLIGHT.trigger(reason, force=force, **attrs)


def incident(event: str, *, dump_reason: str | None = None,
             **attrs: Any) -> Path | None:
    """Record one alert-state transition in the black box.

    The shared shape behind every alerting subsystem (SLO burn-rate
    breaches, TSDB anomalies): the transition is noted under ``event``,
    and *entering* the bad state — signalled by passing ``dump_reason``
    — additionally triggers a bundle dump under that reason, so the
    evidence of why is captured while it is still in the ring.
    Recoveries pass no ``dump_reason`` and cost one ring append.
    """
    _FLIGHT.note(event, **attrs)
    if dump_reason is None:
        return None
    return _FLIGHT.trigger(dump_reason, **attrs)


def configure(
    crash_dir: "str | Path | None" = None,
    *,
    capacity: int | None = None,
    debounce: float | None = None,
    install_signal: bool = True,
) -> FlightRecorder:
    """(Re)configure the global recorder; returns it.

    Setting ``crash_dir`` arms dumping and (by default) the ``SIGUSR2``
    handler. ``capacity`` resizes the ring, preserving the most recent
    events. Idempotent and cheap; ``offload.init`` and
    ``scripts/chaos_smoke.py --crash-dir`` both land here.
    """
    if crash_dir is not None:
        _FLIGHT.crash_dir = Path(crash_dir)
    if debounce is not None:
        _FLIGHT.debounce = debounce
    if capacity is not None and capacity != _FLIGHT.capacity:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        old = _FLIGHT.records()
        _FLIGHT._ring = deque(old[-capacity:], maxlen=capacity)
        _FLIGHT.capacity = capacity
    if crash_dir is not None and install_signal:
        _FLIGHT.install_signal_handler()
    return _FLIGHT


def attach_runtime(runtime: "Runtime") -> None:
    """Include ``runtime`` in bundles and arm the atexit-with-pending
    trigger (once per process)."""
    global _ATEXIT_ARMED
    _FLIGHT.attach(runtime)
    if not _ATEXIT_ARMED:
        atexit.register(_FLIGHT._atexit_hook)
        _ATEXIT_ARMED = True


def detach_runtime(runtime: "Runtime") -> None:
    """Remove ``runtime`` from bundle scope (called by clean shutdown)."""
    _FLIGHT.detach(runtime)


# --------------------------------------------------------------------------
# Offline reading
# --------------------------------------------------------------------------


def load_bundle(path: "str | Path") -> dict[str, Any]:
    """Read a crash bundle directory back into memory.

    Returns ``{"manifest", "events", "metrics", "inflight", "config",
    "timeseries", "skipped_lines"}``. A truncated ``events.jsonl`` (the process died
    mid-write) is expected, not an error: unparseable lines are skipped
    and counted in ``skipped_lines``. A missing or unparseable manifest
    raises ``ValueError`` — without it the directory is not a bundle.
    """
    bundle = Path(path)
    manifest_path = bundle / BUNDLE_MANIFEST
    if not manifest_path.is_file():
        raise ValueError(f"{bundle}: no {BUNDLE_MANIFEST} (not a crash bundle)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{manifest_path}: unparseable manifest: {exc}") from exc
    events: list[dict[str, Any]] = []
    skipped = 0
    events_path = bundle / BUNDLE_EVENTS
    if events_path.is_file():
        for line in events_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    result: dict[str, Any] = {
        "manifest": manifest,
        "events": events,
        "skipped_lines": skipped,
    }
    for key, name in (("metrics", BUNDLE_METRICS),
                      ("inflight", BUNDLE_INFLIGHT),
                      ("config", BUNDLE_CONFIG),
                      ("timeseries", BUNDLE_TIMESERIES)):
        side = bundle / name
        if side.is_file():
            try:
                result[key] = json.loads(side.read_text())
            except json.JSONDecodeError:
                result[key] = None  # truncated side file: keep the events
        else:
            result[key] = None
    return result


def find_bundles(crash_dir: "str | Path") -> list[Path]:
    """Bundle directories under ``crash_dir``, oldest first."""
    root = Path(crash_dir)
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.iterdir()
        if p.is_dir() and (p / BUNDLE_MANIFEST).is_file()
    )
