"""Continuous per-kernel profiling for the offload path.

Sampling (:mod:`repro.telemetry.sampling`) decides which traces keep
their *spans*; this module is the other half of the bargain: every
completed offload — sampled or not — folds into a per-kernel rolling
profile so aggregate latency attribution never has sampling error. A
profile is a handful of counters plus one :class:`~repro.telemetry.
metrics.LogHistogram` per phase, so folding costs a dict lookup and an
O(log buckets) observe — cheap enough for the unsampled fast path.

The aggregates surface in three places:

* the metrics snapshot (``KernelProfiler.snapshot()``), merged into
  ``/metrics`` as ``kernel.<name>.<phase>`` histogram series;
* ``python -m repro.telemetry.report --profile``, which ranks kernels
  by total and tail time;
* the SLO monitor, which reads the same completion stream.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

from .metrics import LogHistogram

__all__ = ["KernelProfile", "KernelProfiler", "render_profile_table"]

#: Phase used for the whole issue->result round trip.
TOTAL_PHASE = "offload"


class KernelProfile:
    """Rolling aggregate for one kernel (functor type name)."""

    __slots__ = ("name", "_lock", "count", "errors", "bytes", "_phases")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.errors = 0
        self.bytes = 0
        self._phases: dict[str, LogHistogram] = {}

    def _phase(self, phase: str) -> LogHistogram:
        with self._lock:
            hist = self._phases.get(phase)
            if hist is None:
                hist = self._phases[phase] = LogHistogram()
            return hist

    def record(self, duration_ns: int, *, error: bool = False) -> None:
        """Fold one completed offload's total round-trip time."""
        with self._lock:
            self.count += 1
            if error:
                self.errors += 1
        self._phase(TOTAL_PHASE).observe(duration_ns / 1e9)

    def record_phase(self, phase: str, duration_ns: int) -> None:
        """Fold one span's duration under ``phase`` (e.g. ``execute``)."""
        self._phase(phase).observe(duration_ns / 1e9)

    def add_bytes(self, nbytes: int) -> None:
        with self._lock:
            self.bytes += int(nbytes)

    def phases(self) -> dict[str, LogHistogram]:
        with self._lock:
            return dict(self._phases)

    def summary(self) -> dict[str, Any]:
        with self._lock:
            phases = dict(self._phases)
            count, errors, nbytes = self.count, self.errors, self.bytes
        return {
            "kernel": self.name,
            "count": count,
            "errors": errors,
            "bytes": nbytes,
            "phases": {phase: h.summary() for phase, h in sorted(phases.items())},
        }


class KernelProfiler:
    """Name -> :class:`KernelProfile` table with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._profiles: dict[str, KernelProfile] = {}

    def profile(self, kernel: str) -> KernelProfile:
        with self._lock:
            prof = self._profiles.get(kernel)
            if prof is None:
                prof = self._profiles[kernel] = KernelProfile(kernel)
            return prof

    def record(self, kernel: str, duration_ns: int, *,
               error: bool = False) -> None:
        self.profile(kernel).record(duration_ns, error=error)

    def record_phase(self, kernel: str, phase: str, duration_ns: int) -> None:
        self.profile(kernel).record_phase(phase, duration_ns)

    def add_bytes(self, kernel: str, nbytes: int) -> None:
        self.profile(kernel).add_bytes(nbytes)

    def profiles(self) -> dict[str, KernelProfile]:
        with self._lock:
            return dict(self._profiles)

    def snapshot(self) -> dict[str, Any]:
        """All kernels as ``{kernel: summary}`` (JSON-friendly)."""
        return {name: p.summary()
                for name, p in sorted(self.profiles().items())}

    def metric_series(self) -> dict[str, Any]:
        """Profiles as histogram-snapshot entries for ``/metrics``.

        Returns ``{"kernel.<name>.<phase>": summary}`` dicts in the same
        shape as ``MetricsRegistry.snapshot()["histograms"]`` values so
        the Prometheus exporter renders them as real ``_bucket`` series.
        """
        series: dict[str, Any] = {}
        for name, prof in sorted(self.profiles().items()):
            for phase, hist in sorted(prof.phases().items()):
                series[f"kernel.{name}.{phase}"] = hist.summary()
        return series

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()


def render_profile_table(
    snapshot: Mapping[str, Mapping[str, Any]],
    *,
    sort_by: str = "total",
    limit: int | None = None,
) -> str:
    """Rank kernels by total or tail time for ``report.py --profile``.

    ``snapshot`` is :meth:`KernelProfiler.snapshot` output (or the same
    shape reconstructed from JSON). Sorting is by cumulative wall time
    in the ``offload`` phase (``sort_by="total"``) or by its p99
    (``sort_by="tail"``). Summaries carrying an ``exemplar`` (the
    slowest offload's trace id, attached by the offline reconstruction
    in :mod:`repro.telemetry.report`) grow an extra column linking each
    row to one concrete trace.
    """
    if sort_by not in ("total", "tail"):
        raise ValueError(f"sort_by must be 'total' or 'tail', got {sort_by!r}")

    def _key(item: tuple[str, Mapping[str, Any]]) -> float:
        summary = item[1].get("phases", {}).get(TOTAL_PHASE, {})
        if sort_by == "tail":
            return float(summary.get("p99", 0.0))
        return float(summary.get("mean", 0.0)) * float(summary.get("count", 0))

    with_exemplars = any(
        isinstance(summary.get("exemplar"), Mapping)
        for summary in snapshot.values()
    )
    rows: list[dict[str, str]] = []
    ranked: Iterable[tuple[str, Mapping[str, Any]]] = sorted(
        snapshot.items(), key=_key, reverse=True
    )
    for name, summary in ranked:
        total = summary.get("phases", {}).get(TOTAL_PHASE, {})
        count = int(summary.get("count", 0))
        mean = float(total.get("mean", 0.0))
        row = {
            "kernel": name,
            "count": str(count),
            "errors": str(int(summary.get("errors", 0))),
            "bytes": f"{int(summary.get('bytes', 0)):,}",
            "total_s": f"{mean * int(total.get('count', 0)):.4f}",
            "p50_ms": f"{float(total.get('p50', 0.0)) * 1e3:.3f}",
            "p95_ms": f"{float(total.get('p95', 0.0)) * 1e3:.3f}",
            "p99_ms": f"{float(total.get('p99', 0.0)) * 1e3:.3f}",
        }
        if with_exemplars:
            exemplar = summary.get("exemplar") or {}
            trace_id = str(exemplar.get("trace_id", "") or "-")
            row["slowest_trace"] = trace_id[:16] or "-"
        rows.append(row)
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "no kernel profiles recorded"

    headers = list(rows[0])
    widths = {h: max(len(h), *(len(r[h]) for r in rows)) for h in headers}
    lines = ["  ".join(h.ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(row[h].ljust(widths[h]) for h in headers))
    return "\n".join(lines)
