"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` states an objective over a phase of the offload path:
"99% of ``offload`` round trips finish under 50 ms", or "99.9% of
``offload`` attempts succeed" (``threshold_ns=None`` makes it an error
SLO). The :class:`SLOMonitor` evaluates each objective over two rolling
windows — a fast one that reacts within tens of operations and a slow
one that filters blips — and alerts only when *both* burn too hot, the
standard multi-window burn-rate recipe (Google SRE workbook, ch. 5).

Burn rate is ``bad_fraction / error_budget`` where the budget is
``1 - objective``: burn 1.0 consumes the budget exactly at the allowed
pace, burn >= ``burn_threshold`` (default 2.0) on both windows raises a
breach. Window sizes are counted in *operations*, not wall seconds —
the "5m-equivalent" fast and "1h-equivalent" slow windows of a
time-based alerting stack, made deterministic for tests and chaos runs.

Breaches surface three ways:

* ``telemetry.slo_breach`` / ``telemetry.slo_recovered`` events in the
  trace (``scripts/chaos_smoke.py`` asserts the former fires under
  injected faults);
* ``slo.<name>.fast_burn`` / ``slow_burn`` / ``breached`` gauges on the
  metrics snapshot (and thus ``/metrics``);
* :meth:`SLOMonitor.breached`, which the ``/healthz`` endpoint folds
  into a ``degraded`` status.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.telemetry import flightrecorder

__all__ = ["SLO", "SLOMonitor", "default_slos"]

#: Phase name carrying the whole issue->result round trip.
TOTAL_PHASE = "offload"


@dataclass(frozen=True, slots=True)
class SLO:
    """One objective over one phase of the offload path.

    Attributes
    ----------
    name:
        Alert identity (``offload-latency-p99``); also the gauge prefix.
    phase:
        Which duration stream feeds it: ``"offload"`` for the round
        trip, otherwise a span name (``"offload.execute"``).
    threshold_ns:
        An operation is *bad* when it runs longer than this; ``None``
        makes this an availability SLO where only errors are bad.
    objective:
        Target good fraction in ``(0, 1)`` — 0.99 allows a 1% budget.
    """

    name: str
    phase: str
    threshold_ns: int | None
    objective: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO needs a name")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.threshold_ns is not None and self.threshold_ns <= 0:
            raise ValueError(
                f"threshold_ns must be positive, got {self.threshold_ns}"
            )

    def is_bad(self, duration_ns: int, error: bool) -> bool:
        if error:
            return True
        return self.threshold_ns is not None and duration_ns > self.threshold_ns


def default_slos() -> tuple[SLO, ...]:
    """A sane starter set: round-trip latency + availability."""
    return (
        SLO(name="offload-latency", phase=TOTAL_PHASE,
            threshold_ns=250_000_000, objective=0.99),
        SLO(name="offload-availability", phase=TOTAL_PHASE,
            threshold_ns=None, objective=0.99),
    )


class _SLOState:
    """Rolling windows with O(1) burn math — this sits on the hot path.

    Bad counts are maintained incrementally on push/evict rather than
    summed per observe, so one completion costs two deque appends, not a
    600-element walk of the slow window.
    """

    __slots__ = (
        "slo", "fast", "slow", "fast_window", "slow_window",
        "fast_bad", "slow_bad", "breached", "total", "bad", "gauges",
    )

    def __init__(self, slo: SLO, fast_window: int, slow_window: int) -> None:
        self.slo = slo
        self.fast: deque[int] = deque()
        self.slow: deque[int] = deque()
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.fast_bad = 0
        self.slow_bad = 0
        self.breached = False
        self.total = 0
        self.bad = 0
        self.gauges: tuple[Any, Any, Any] | None = None

    def push(self, bad: int) -> None:
        self.fast.append(bad)
        self.fast_bad += bad
        if len(self.fast) > self.fast_window:
            self.fast_bad -= self.fast.popleft()
        self.slow.append(bad)
        self.slow_bad += bad
        if len(self.slow) > self.slow_window:
            self.slow_bad -= self.slow.popleft()
        self.total += 1
        self.bad += bad

    def fast_burn(self, budget: float) -> float:
        if not self.fast:
            return 0.0
        return (self.fast_bad / len(self.fast)) / budget

    def slow_burn(self, budget: float) -> float:
        if not self.slow:
            return 0.0
        return (self.slow_bad / len(self.slow)) / budget


class SLOMonitor:
    """Evaluates a set of SLOs over rolling operation windows.

    Parameters
    ----------
    slos:
        The objectives; see :func:`default_slos`.
    fast_window / slow_window:
        Window sizes in operations (the 5m-/1h-equivalents).
    burn_threshold:
        Both windows must burn at >= this rate to breach (2.0 means the
        error budget is being consumed at twice the sustainable pace).
    min_samples:
        Operations required in the fast window before alerting at all —
        keeps a single cold-start failure from paging.
    emit:
        ``emit(name, **attrs)`` event sink (the recorder's ``event``);
        receives ``telemetry.slo_breach`` / ``telemetry.slo_recovered``.
    metrics:
        A :class:`~repro.telemetry.metrics.MetricsRegistry` for the
        burn/breached gauges (optional).
    max_tenants:
        Cap on distinct per-tenant evaluation states (multi-tenant
        serving: each observed tenant gets its own rolling windows per
        SLO, so one noisy tenant pages alone instead of burning the
        global budget anonymously). Tenants beyond the cap fold into the
        global state only — bounded cardinality against tenant-id
        explosions.
    """

    def __init__(
        self,
        slos: Iterable[SLO] | None = None,
        *,
        fast_window: int = 50,
        slow_window: int = 600,
        burn_threshold: float = 2.0,
        min_samples: int = 10,
        emit: Callable[..., Any] | None = None,
        metrics: Any = None,
        max_tenants: int = 32,
    ) -> None:
        if fast_window < 1 or slow_window < fast_window:
            raise ValueError(
                f"need 1 <= fast_window <= slow_window, got "
                f"{fast_window}/{slow_window}"
            )
        if burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be positive, got {burn_threshold}"
            )
        resolved = tuple(slos) if slos is not None else default_slos()
        names = [s.name for s in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.burn_threshold = burn_threshold
        self.min_samples = max(1, min_samples)
        self.emit = emit
        self.metrics = metrics
        self.max_tenants = max(0, max_tenants)
        self._fast_window = fast_window
        self._slow_window = slow_window
        self._lock = threading.Lock()
        self._states = {
            s.name: _SLOState(s, fast_window, slow_window) for s in resolved
        }
        #: (slo name, tenant) -> lazily created per-tenant state.
        self._tenant_states: dict[tuple[str, str], _SLOState] = {}
        self._tenants: set[str] = set()
        # Hot-path accelerators: observe() is called for every span fold
        # of every offload, so phases with no SLO must cost one dict get,
        # and gauge objects are resolved once, not per observe.
        self._by_phase: dict[str, tuple[_SLOState, ...]] = {}
        for state in self._states.values():
            phase_states = self._by_phase.get(state.slo.phase, ())
            self._by_phase[state.slo.phase] = phase_states + (state,)
            if metrics is not None:
                state.gauges = (
                    metrics.gauge(f"slo.{state.slo.name}.fast_burn"),
                    metrics.gauge(f"slo.{state.slo.name}.slow_burn"),
                    metrics.gauge(f"slo.{state.slo.name}.breached"),
                )

    @property
    def slos(self) -> tuple[SLO, ...]:
        return tuple(state.slo for state in self._states.values())

    # -- feeding -----------------------------------------------------------
    def _tenant_state_locked(
        self, state: _SLOState, tenant: str
    ) -> _SLOState | None:
        """Get-or-create the per-tenant twin of a global SLO state."""
        key = (state.slo.name, tenant)
        tstate = self._tenant_states.get(key)
        if tstate is None:
            if (tenant not in self._tenants
                    and len(self._tenants) >= self.max_tenants):
                return None
            self._tenants.add(tenant)
            tstate = self._tenant_states[key] = _SLOState(
                state.slo, self._fast_window, self._slow_window
            )
            if self.metrics is not None:
                prefix = f"slo.{state.slo.name}.tenant.{tenant}"
                tstate.gauges = (
                    self.metrics.gauge(f"{prefix}.fast_burn"),
                    self.metrics.gauge(f"{prefix}.slow_burn"),
                    self.metrics.gauge(f"{prefix}.breached"),
                )
        return tstate

    def _fold_locked(
        self,
        state: _SLOState,
        duration_ns: int,
        error: bool,
        tenant: str | None,
        transitions: list[tuple[SLO, bool, float, float, str | None]],
    ) -> None:
        slo = state.slo
        state.push(int(slo.is_bad(duration_ns, error)))
        budget = 1.0 - slo.objective
        fast_burn = state.fast_burn(budget)
        slow_burn = state.slow_burn(budget)
        breached = (
            len(state.fast) >= self.min_samples
            and fast_burn >= self.burn_threshold
            and slow_burn >= self.burn_threshold
        )
        if breached != state.breached:
            state.breached = breached
            transitions.append((slo, breached, fast_burn, slow_burn, tenant))
        if state.gauges is not None:
            fast_g, slow_g, breached_g = state.gauges
            fast_g.set(fast_burn)
            slow_g.set(slow_burn)
            breached_g.set(1.0 if state.breached else 0.0)

    def observe(self, phase: str, duration_ns: int, *,
                error: bool = False, tenant: str | None = None) -> None:
        """Fold one finished operation of ``phase`` into its SLOs.

        With ``tenant`` set, the operation also feeds that tenant's own
        rolling windows: breach events then carry the tenant and name
        ``<slo>[<tenant>]``, so alerting distinguishes "tenant X is
        over budget" from "the service is over budget". The global
        (tenant-less) state is always fed.
        """
        states = self._by_phase.get(phase)
        if states is None:
            return
        transitions: list[tuple[SLO, bool, float, float, str | None]] = []
        with self._lock:
            for state in states:
                self._fold_locked(state, duration_ns, error, None, transitions)
                if tenant is not None:
                    tstate = self._tenant_state_locked(state, tenant)
                    if tstate is not None:
                        self._fold_locked(
                            tstate, duration_ns, error, tenant, transitions
                        )
        # Emit outside the lock: the sink is the recorder, which may
        # call back into metrics.
        for slo, breached, fast_burn, slow_burn, slo_tenant in transitions:
            if self.emit is None:
                continue
            name = ("telemetry.slo_breach" if breached
                    else "telemetry.slo_recovered")
            label = (slo.name if slo_tenant is None
                     else f"{slo.name}[{slo_tenant}]")
            attrs: dict[str, Any] = dict(
                slo=label, phase=slo.phase,
                fast_burn=round(fast_burn, 3),
                slow_burn=round(slow_burn, 3),
                objective=slo.objective,
            )
            if slo_tenant is not None:
                attrs["tenant"] = slo_tenant
            self.emit(name, **attrs)
            # SLO breaches are flight-recorder incidents: when the burn
            # rate pages, the evidence of *why* is the recent
            # control-plane event stream, captured right now.
            flightrecorder.incident(
                name, dump_reason="slo_breach" if breached else None, **attrs
            )

    # Alias used by the recorder's span fold, which feeds phase streams.
    observe_phase = observe

    # -- queries -----------------------------------------------------------
    def breached(self) -> list[str]:
        """Names of the SLOs currently in breach (healthz feeds on it).

        Per-tenant breaches appear as ``<slo>[<tenant>]`` next to the
        global names.
        """
        with self._lock:
            names = [name for name, state in self._states.items()
                     if state.breached]
            names += [f"{slo_name}[{tenant}]"
                      for (slo_name, tenant), state
                      in self._tenant_states.items() if state.breached]
            return names

    @staticmethod
    def _state_summary(state: _SLOState) -> dict[str, Any]:
        slo = state.slo
        budget = 1.0 - slo.objective
        return {
            "phase": slo.phase,
            "threshold_ns": slo.threshold_ns,
            "objective": slo.objective,
            "total": state.total,
            "bad": state.bad,
            "fast_burn": state.fast_burn(budget),
            "slow_burn": state.slow_burn(budget),
            "breached": state.breached,
        }

    def snapshot(self) -> dict[str, Any]:
        """Per-SLO burn state as a JSON-friendly dict.

        Per-tenant states land under ``<slo>[<tenant>]`` keys, each with
        its ``tenant`` recorded.
        """
        out: dict[str, Any] = {}
        with self._lock:
            for name, state in self._states.items():
                out[name] = self._state_summary(state)
            for (slo_name, tenant), state in self._tenant_states.items():
                summary = self._state_summary(state)
                summary["tenant"] = tenant
                out[f"{slo_name}[{tenant}]"] = summary
        return out
