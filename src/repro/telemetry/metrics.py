"""Counters, gauges and histograms for the offload path.

The metric types are deliberately tiny: a :class:`Counter` is a locked
integer, a :class:`Gauge` a locked float, a :class:`Histogram` a ring of
recent observations with percentile queries. A :class:`MetricsRegistry`
creates them on first use (``registry.counter("offload.issued").inc()``)
and produces a single JSON-friendly :meth:`~MetricsRegistry.snapshot`.

All operations are thread-safe; the registry lock only guards the name
table, each instrument carries its own lock so hot counters do not
serialize against each other.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default behavior without requiring the
    samples to be a numpy array.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, live buffers, ...)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Ring of recent observations with percentile queries.

    Keeps the last ``maxlen`` samples (enough for p50/p95/p99 of a run)
    plus exact lifetime ``count``/``total`` so means stay correct even
    after the ring wraps.
    """

    __slots__ = ("_lock", "_samples", "count", "total")

    def __init__(self, maxlen: int = 4096) -> None:
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self.count += 1
            self.total += value

    def percentile(self, q: float) -> float:
        with self._lock:
            return percentile(list(self._samples), q)

    def summary(self) -> dict[str, float]:
        """Count, mean, min/max and p50/p95 of the retained window."""
        with self._lock:
            samples = list(self._samples)
            count, total = self.count, self.total
        if not samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {
            "count": count,
            "mean": total / count,
            "min": min(samples),
            "max": max(samples),
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
        }


class MetricsRegistry:
    """Name -> instrument table with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str, maxlen: int = 4096) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(maxlen)
            return instrument

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-friendly dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def clear(self) -> None:
        """Drop every instrument (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
