"""Counters, gauges and histograms for the offload path.

The metric types are deliberately tiny: a :class:`Counter` is a locked
integer, a :class:`Gauge` a locked float, a :class:`Histogram` a ring of
recent observations with percentile queries, and a :class:`LogHistogram`
an HDR-style fixed-bucket latency histogram whose geometric bucket
bounds give a bounded relative quantile error at O(1) memory — the shape
behind the Prometheus ``_bucket`` series and the continuous-profiling
percentiles. A :class:`MetricsRegistry` creates them on first use
(``registry.counter("offload.issued").inc()``) and produces a single
JSON-friendly :meth:`~MetricsRegistry.snapshot`.

All operations are thread-safe; the registry lock only guards the name
table, each instrument carries its own lock so hot counters do not
serialize against each other.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "default_latency_bounds",
    "percentile",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default behavior without requiring the
    samples to be a numpy array.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, live buffers, ...)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Ring of recent observations with percentile queries.

    Keeps the last ``maxlen`` samples (enough for p50/p95/p99 of a run)
    plus exact lifetime ``count``/``total`` so means stay correct even
    after the ring wraps.
    """

    __slots__ = ("_lock", "_samples", "count", "total")

    def __init__(self, maxlen: int = 4096) -> None:
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self.count += 1
            self.total += value

    def percentile(self, q: float) -> float:
        with self._lock:
            return percentile(list(self._samples), q)

    def summary(self) -> dict[str, float]:
        """Count, mean, min/max and p50/p95 of the retained window."""
        with self._lock:
            samples = list(self._samples)
            count, total = self.count, self.total
        if not samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {
            "count": count,
            "mean": total / count,
            "min": min(samples),
            "max": max(samples),
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
        }


def default_latency_bounds() -> tuple[float, ...]:
    """Geometric bucket upper bounds for latencies, in seconds.

    1 µs doubling up to ~134 s (28 buckets) — wide enough to span the
    paper's 6.1 µs VE-side dispatch and a multi-second chaos stall with
    <= 2x relative error per bucket. Values above the last bound land in
    the implicit +Inf bucket.
    """
    return tuple(1e-6 * 2.0**i for i in range(28))


class LogHistogram:
    """HDR-style histogram over fixed geometric buckets.

    ``observe`` is O(log buckets) and allocation-free, which is what lets
    the continuous profiler fold *every* completed offload — sampled or
    not — without touching the span ring. Unlike :class:`Histogram` it
    never forgets: counts are lifetime cumulative, so the summary's
    ``buckets`` list renders directly as a Prometheus ``_bucket`` series.
    Percentiles interpolate within the winning bucket and clamp to the
    observed min/max, so small-count queries stay sane.

    With ``exemplars=True`` each bucket additionally retains the most
    recent ``(trace_id, value)`` observed into it — the OpenMetrics
    exemplar shape — so a fat latency bucket links straight to one
    concrete trace that landed there. Off by default: the retention is
    one tuple store per observation, but most histograms have no trace
    to link.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "count", "total", "_min",
                 "_max", "_exemplars")

    def __init__(self, bounds: Sequence[float] | None = None, *,
                 exemplars: bool = False) -> None:
        self._bounds = tuple(bounds) if bounds is not None \
            else default_latency_bounds()
        if list(self._bounds) != sorted(set(self._bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        if self._bounds and self._bounds[0] <= 0.0:
            raise ValueError("bucket bounds must be positive")
        self._lock = threading.Lock()
        # one extra slot: the +Inf overflow bucket
        self._counts = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._exemplars: list[tuple[str, float] | None] | None = (
            [None] * (len(self._bounds) + 1) if exemplars else None
        )

    def enable_exemplars(self) -> None:
        """Start retaining per-bucket exemplars (idempotent)."""
        with self._lock:
            if self._exemplars is None:
                self._exemplars = [None] * (len(self._bounds) + 1)

    def observe(self, value: float, trace_id: str | None = None) -> None:
        value = float(value)
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if trace_id and self._exemplars is not None:
                self._exemplars[idx] = (trace_id, value)

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            count = self.count
            lo_seen, hi_seen = self._min, self._max
        if count == 0:
            return 0.0
        rank = (q / 100.0) * count
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = self._bounds[idx - 1] if idx > 0 else 0.0
                upper = self._bounds[idx] if idx < len(self._bounds) else hi_seen
                frac = 1.0 - (cumulative - rank) / bucket_count
                value = lower + (upper - lower) * frac
                return float(min(max(value, lo_seen), hi_seen))
        return float(hi_seen)

    def summary(self) -> dict[str, Any]:
        """Lifetime stats plus cumulative ``buckets`` for exposition.

        ``buckets`` is an ordered list of ``[le, cumulative_count]``
        pairs ending with ``["+Inf", count]`` — exactly the shape
        :func:`repro.telemetry.promexport.to_prometheus` turns into a
        ``# TYPE ... histogram`` series. When exemplar retention is on,
        an ``exemplars`` list of ``[le, trace_id, value]`` rides along
        for the buckets that have one.
        """
        with self._lock:
            counts = list(self._counts)
            count, total = self.count, self.total
            lo, hi = self._min, self._max
            retained = list(self._exemplars) if self._exemplars is not None \
                else None
        if count == 0:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "buckets": []}
        buckets: list[list[Any]] = []
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, counts):
            cumulative += bucket_count
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", count])
        summary: dict[str, Any] = {
            "count": count,
            "mean": total / count,
            "min": lo,
            "max": hi,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": buckets,
        }
        if retained is not None:
            bounds: list[Any] = list(self._bounds) + ["+Inf"]
            summary["exemplars"] = [
                [bounds[idx], trace_id, value]
                for idx, slot in enumerate(retained)
                if slot is not None
                for trace_id, value in (slot,)
            ]
        return summary


class MetricsRegistry:
    """Name -> instrument table with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram | LogHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str, maxlen: int = 4096) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(maxlen)
            if not isinstance(instrument, Histogram):
                raise TypeError(f"{name!r} is registered as a log histogram")
            return instrument

    def log_histogram(
        self, name: str, bounds: Sequence[float] | None = None,
        *, exemplars: bool = False,
    ) -> LogHistogram:
        """Get-or-create a bucketed histogram sharing the name table.

        Log and ring histograms share a namespace so ``snapshot()`` stays
        a single ``histograms`` section; asking for the same name with
        the other accessor is a programming error and raises.
        ``exemplars=True`` turns per-bucket exemplar retention on for
        the instrument, whether it is being created or already exists.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = LogHistogram(
                    bounds, exemplars=exemplars)
            if not isinstance(instrument, LogHistogram):
                raise TypeError(f"{name!r} is registered as a ring histogram")
        if exemplars:
            instrument.enable_exemplars()
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-friendly dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def clear(self) -> None:
        """Drop every instrument (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
