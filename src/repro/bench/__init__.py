"""Benchmarking framework for the reproduction.

``harness``
    The paper's measurement protocol (Sec. V): warm-up iterations, many
    repetitions, averages — applied to both simulated-time and wall-clock
    measurements.
``stats``
    Summary statistics of a measurement series.
``tables`` / ``figures``
    Paper-style rendering of result tables and bandwidth figures
    (ASCII, suitable for terminal output and result files).
``calibration``
    Every quantitative anchor extracted from the paper's text, and the
    checks comparing model/protocol output against them.
"""

from repro.bench.calibration import PAPER, CalibrationCheck, check_timing_model
from repro.bench.harness import measure_sim, measure_wall, scaled_reps
from repro.bench.stats import Stats
from repro.bench.tables import format_bandwidth, format_time, render_table
from repro.bench.figures import ascii_chart, render_series

__all__ = [
    "CalibrationCheck",
    "PAPER",
    "Stats",
    "ascii_chart",
    "check_timing_model",
    "format_bandwidth",
    "format_time",
    "measure_sim",
    "measure_wall",
    "render_series",
    "render_table",
    "scaled_reps",
]
