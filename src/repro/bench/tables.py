"""Paper-style table rendering (ASCII)."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.hw.specs import GIB, KIB, MIB

__all__ = ["format_bandwidth", "format_size", "format_time", "render_table"]


def format_time(seconds: float) -> str:
    """Human-readable duration (µs/ms/s as appropriate)."""
    if seconds < 0:
        return f"-{format_time(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds:.3f} s"


def format_bandwidth(bytes_per_second: float) -> str:
    """Bandwidth in GiB/s (the paper's unit for Table IV / Fig. 10)."""
    return f"{bytes_per_second / GIB:.2f} GiB/s"


def format_size(nbytes: int) -> str:
    """Size with binary units (8 B, 4 KiB, 2 MiB, ...)."""
    if nbytes >= GIB and nbytes % GIB == 0:
        return f"{nbytes // GIB} GiB"
    if nbytes >= MIB and nbytes % MIB == 0:
        return f"{nbytes // MIB} MiB"
    if nbytes >= KIB and nbytes % KIB == 0:
        return f"{nbytes // KIB} KiB"
    return f"{nbytes} B"


def render_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    title: str = "",
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows ``columns`` if given, otherwise the key order of
    the first row. Values are stringified as-is; use the ``format_*``
    helpers when building rows.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[str(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
