"""Protocol-phase breakdown of a single offload (Sec. V-A, S2).

The simulated backends emit tracer spans for every protocol phase
(serialize, post, flag poll, DMA fetch, execute, result path, resolve).
:func:`offload_breakdown` runs one offload under tracing and returns the
per-phase durations — the measured counterpart of the paper's
"6.1 µs = 1.2 µs PCIe round trip + ~5 µs framework" decomposition.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import BackendError
from repro.ham.functor import Functor
from repro.offload.runtime import Runtime

__all__ = ["offload_breakdown"]


def offload_breakdown(
    runtime: Runtime, functor: Functor, *, node: int = 1, warmup: int = 3
) -> dict[str, float]:
    """Measure one offload's per-phase durations on a simulated backend.

    Returns a mapping from span label (e.g. ``"dma.ve.lhm_poll"``) to
    summed duration in seconds, plus a ``"total"`` entry for the whole
    offload.
    """
    backend = runtime.backend
    machine = getattr(backend, "machine", None)
    if machine is None or machine.sim.tracer is None:
        raise BackendError("offload_breakdown needs a simulated backend with a tracer")
    tracer = machine.sim.tracer
    for _ in range(warmup):
        runtime.sync(node, functor)
    tracer.clear()
    start = machine.sim.now
    runtime.sync(node, functor)
    total = machine.sim.now - start
    phases: dict[str, float] = defaultdict(float)
    for record in tracer.spans():
        phases[record.label] += record.duration
    phases["total"] = total
    return dict(phases)
