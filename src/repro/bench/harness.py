"""Measurement harness implementing the paper's protocol (Sec. V).

"Measurements for offloading kernels were repeated 10^6 times, data
transfers 10^3 times for every data size. Timings were preceded by 10
warm-up iterations to avoid distortion from effects like cold caches.
... All shown numbers are averages over all runs."

The simulator is deterministic, so far fewer repetitions suffice for the
same averages; :func:`scaled_reps` keeps the *shape* of the protocol
(warm-ups, more reps for cheap operations) while bounding wall-clock time
of the benchmark suite.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.bench.stats import Stats
from repro.sim import Simulator

__all__ = ["measure_sim", "measure_wall", "scaled_reps"]

#: Paper repetition counts (kept for reference / reports).
PAPER_OFFLOAD_REPS = 1_000_000
PAPER_TRANSFER_REPS = 1_000
PAPER_WARMUP = 10


def scaled_reps(nbytes: int, *, base: int = 50, floor: int = 3) -> int:
    """Repetitions for a transfer of ``nbytes``.

    The paper uses 10^3 repetitions per size; the simulator moves real
    bytes, so repetitions shrink with size to keep total copied data
    bounded (~100 MiB per measurement point).
    """
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    budget = 100 * 2**20
    return max(floor, min(base, budget // nbytes))


def measure_sim(
    operation: Callable[[], None],
    sim: Simulator,
    *,
    reps: int = 50,
    warmup: int = PAPER_WARMUP,
) -> Stats:
    """Measure the simulated duration of ``operation``.

    ``operation`` must drive the simulator to completion of one instance
    of the measured activity (the backends' blocking calls do).
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    for _ in range(warmup):
        operation()
    samples = []
    for _ in range(reps):
        start = sim.now
        operation()
        samples.append(sim.now - start)
    return Stats.from_samples(samples)


def measure_wall(
    operation: Callable[[], None],
    *,
    reps: int = 200,
    warmup: int = PAPER_WARMUP,
) -> Stats:
    """Measure the wall-clock duration of ``operation`` (functional backends)."""
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    for _ in range(warmup):
        operation()
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - start)
    return Stats.from_samples(samples)
