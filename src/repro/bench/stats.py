"""Summary statistics for measurement series."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.metrics import percentile

__all__ = ["Stats"]


@dataclass(frozen=True)
class Stats:
    """Summary of a measurement series (times in seconds).

    The paper reports averages over all runs (Sec. V); we additionally
    keep spread and tail information (median/p95), which for the
    deterministic simulator mainly documents protocol warm-up effects
    and for the functional backends captures scheduling jitter.
    """

    n: int
    mean: float
    minimum: float
    maximum: float
    std: float
    median: float = 0.0
    p95: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Stats":
        """Compute statistics from raw samples."""
        if not samples:
            raise ValueError("no samples")
        n = len(samples)
        mean = sum(samples) / n
        if n > 1:
            var = sum((s - mean) ** 2 for s in samples) / (n - 1)
        else:
            var = 0.0
        return cls(
            n=n,
            mean=mean,
            minimum=min(samples),
            maximum=max(samples),
            std=math.sqrt(var),
            median=percentile(samples, 50.0),
            p95=percentile(samples, 95.0),
        )

    def bandwidth(self, nbytes: int) -> float:
        """Mean bandwidth in bytes/s for transfers of ``nbytes``."""
        if self.mean <= 0:
            raise ValueError("non-positive mean duration")
        return nbytes / self.mean
