"""Reusable experiment implementations.

Every paper reproduction experiment is a plain function here; the pytest
benchmark modules under ``benchmarks/`` *and* the command-line runner
(``python -m repro.bench.cli``) call the same code, so "what the paper
measured" exists exactly once.

All functions execute protocols/transfers on freshly built simulated
machines and return plain data (dicts keyed by method/size), leaving
rendering to the callers.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from repro.backends import (
    DmaCommBackend,
    TcpBackend,
    VeoCommBackend,
    spawn_local_server,
)
from repro.bench.harness import measure_sim, scaled_reps
from repro.ham import f2f, offloadable
from repro.hw.memory import PAGE_4K, PAGE_HUGE_2M
from repro.hw.specs import MIB
from repro.machine import AuroraMachine
from repro.offload import Runtime
from repro.veo import VeoProc
from repro.veos.loader import VeLibrary

__all__ = [
    "FIG10_MAX_SIZE",
    "FIG10_SHM_LHM_MAX",
    "fig10_sizes",
    "measure_batch_gate",
    "measure_dma_manager_ablation",
    "measure_fig9",
    "measure_fig10",
    "measure_hugepages_ablation",
    "measure_multi_ve_scaling",
    "measure_native_veo_call",
    "measure_numa_penalty",
    "measure_pipeline_throughput",
    "measure_protocol_offload_cost",
    "measure_qos",
    "measure_saturation",
    "measure_shm_latency",
    "measure_switch_contention",
    "measure_table4",
    "measure_telemetry_overhead",
    "measure_tsdb_overhead",
]

FIG10_MAX_SIZE = 256 * MIB
FIG10_SHM_LHM_MAX = 4 * MIB


@offloadable
def _empty_kernel() -> None:
    """The empty kernel used by the offload-cost experiments."""
    return None


def fig10_sizes(max_size: int = FIG10_MAX_SIZE) -> list[int]:
    """The power-of-two size axis of Fig. 10."""
    return [2**e for e in range(3, int(math.log2(max_size)) + 1)]


# -- Fig. 9 ------------------------------------------------------------------


def measure_native_veo_call(reps: int = 60, *, full: bool = False):
    """Simulated cost of a native empty ``veo_call`` (Fig. 9 "VEO").

    Returns the mean in seconds; with ``full=True`` the whole
    :class:`~repro.bench.stats.Stats` (median/p95 for JSON artifacts).
    """
    machine = AuroraMachine(num_ves=1)
    proc = VeoProc(machine, 0)
    library = VeLibrary("libempty")
    library.add_function("empty", lambda: None)
    handle = proc.load_library(library)
    ctx = proc.open_context()
    symbol = handle.get_symbol("empty")
    stats = measure_sim(lambda: ctx.call_sync(symbol), machine.sim, reps=reps)
    proc.destroy()
    return stats if full else stats.mean


def measure_protocol_offload_cost(
    backend_cls: Callable[..., object],
    reps: int = 60,
    *,
    full: bool = False,
    **backend_kwargs,
):
    """Simulated cost of an empty offload through a HAM protocol.

    Returns the mean in seconds, or the whole ``Stats`` with ``full=True``.
    """
    runtime = Runtime(backend_cls(**backend_kwargs))
    stats = measure_sim(
        lambda: runtime.sync(1, f2f(_empty_kernel)), runtime.backend.sim, reps=reps
    )
    runtime.shutdown()
    return stats if full else stats.mean


def measure_fig9(reps: int = 60, *, full: bool = False) -> dict:
    """All three Fig. 9 bars, in seconds (``Stats`` with ``full=True``)."""
    return {
        "veo_native": measure_native_veo_call(reps, full=full),
        "ham_veo": measure_protocol_offload_cost(VeoCommBackend, reps, full=full),
        "ham_dma": measure_protocol_offload_cost(DmaCommBackend, reps, full=full),
    }


# -- Fig. 10 / Table IV ----------------------------------------------------------


def _collect(gen):
    def wrapper():
        yield from gen

    return wrapper()


def measure_veo_bandwidth(
    machine: AuroraMachine, proc: VeoProc, sizes: list[int], *, rep_base: int = 8
) -> tuple[list[float], list[float]]:
    """VEO read/write bandwidth (bytes/s) via a persistent VH buffer."""
    max_size = max(sizes)
    vh_buf = machine.vh.ddr.allocate(max_size, page_size=PAGE_HUGE_2M)
    ve_addr = proc.alloc_mem(max_size)
    machine.vh.ddr.view(vh_buf.addr, max_size)[:] = 7
    down, up = [], []
    for size in sizes:
        reps = scaled_reps(size, base=rep_base, floor=2)
        stats = measure_sim(
            lambda s=size: proc.transfer_region(
                machine.vh.ddr, vh_buf.addr, ve_addr, s, direction="vh_to_ve"
            ),
            machine.sim, reps=reps, warmup=1,
        )
        down.append(stats.bandwidth(size))
        stats = measure_sim(
            lambda s=size: proc.transfer_region(
                machine.vh.ddr, vh_buf.addr, ve_addr, s, direction="ve_to_vh"
            ),
            machine.sim, reps=reps, warmup=1,
        )
        up.append(stats.bandwidth(size))
    proc.free_mem(ve_addr)
    machine.vh.ddr.free(vh_buf)
    return down, up


def measure_udma_bandwidth(
    machine: AuroraMachine, sizes: list[int], *, rep_base: int = 8
) -> tuple[list[float], list[float]]:
    """User-DMA bandwidth via a DMAATB-registered shared segment."""
    max_size = max(sizes)
    ve = machine.ve(0)
    segment = machine.vh.shmget(max_size, huge_pages=True)
    entry = ve.dmaatb.register(segment, 0, max_size)
    staging = ve.hbm.allocate(max_size)
    sim = machine.sim

    def run(gen):
        sim.run(until=sim.process(gen))

    down, up = [], []
    for size in sizes:
        reps = scaled_reps(size, base=rep_base, floor=2)
        stats = measure_sim(
            lambda s=size: run(ve.udma.read_host(entry.vehva, ve.hbm, staging.addr, s)),
            sim, reps=reps, warmup=1,
        )
        down.append(stats.bandwidth(size))
        stats = measure_sim(
            lambda s=size: run(ve.udma.write_host(ve.hbm, staging.addr, entry.vehva, s)),
            sim, reps=reps, warmup=1,
        )
        up.append(stats.bandwidth(size))
    ve.hbm.free(staging)
    ve.dmaatb.unregister(entry)
    machine.vh.shmrm(segment)
    return down, up


def measure_shm_lhm_bandwidth(
    machine: AuroraMachine,
    sizes: list[int],
    *,
    cap: int = FIG10_SHM_LHM_MAX,
    rep_base: int = 8,
) -> tuple[list[float], list[float]]:
    """LHM (VH→VE) and SHM (VE→VH) bandwidth; NaN beyond the cap.

    SHM is timed at issue, as the paper's VE-side benchmark observes
    posted stores (EXPERIMENTS.md, deviation D1).
    """
    ve = machine.ve(0)
    segment = machine.vh.shmget(cap, huge_pages=True)
    entry = ve.dmaatb.register(segment, 0, cap)
    payload = np.random.default_rng(0).integers(0, 256, cap, dtype=np.uint8)
    sim = machine.sim

    down, up = [], []
    for size in sizes:
        if size > cap:
            down.append(float("nan"))
            up.append(float("nan"))
            continue
        reps = scaled_reps(size, base=rep_base, floor=2)

        def lhm_once(s=size):
            sim.run(until=sim.process(_collect(ve.lhm_read(entry.vehva, s))))

        def shm_once(s=size):
            sim.run(
                until=sim.process(ve.shm_write(entry.vehva, payload[:s].tobytes()))
            )

        down.append(measure_sim(lhm_once, sim, reps=reps, warmup=1).bandwidth(size))
        up.append(measure_sim(shm_once, sim, reps=reps, warmup=1).bandwidth(size))
        sim.run()  # flush posted-store visibility between sizes
    ve.dmaatb.unregister(entry)
    machine.vh.shmrm(segment)
    return down, up


def measure_fig10(
    sizes: list[int] | None = None, *, rep_base: int = 8
) -> dict[str, object]:
    """All six Fig. 10 curves (bandwidth in bytes/s per size)."""
    sizes = sizes if sizes is not None else fig10_sizes()
    max_size = max(sizes)
    machine = AuroraMachine(
        num_ves=1, ve_memory_bytes=max_size + 16 * MIB,
        vh_memory_bytes=max_size + 16 * MIB,
    )
    proc = VeoProc(machine, 0)
    veo_down, veo_up = measure_veo_bandwidth(machine, proc, sizes, rep_base=rep_base)
    udma_down, udma_up = measure_udma_bandwidth(machine, sizes, rep_base=rep_base)
    wl_down, wl_up = measure_shm_lhm_bandwidth(machine, sizes, rep_base=rep_base)
    proc.destroy()
    return {
        "sizes": sizes,
        "vh_to_ve": {
            "VEO Write": veo_down, "VE User DMA": udma_down, "VE LHM": wl_down,
        },
        "ve_to_vh": {
            "VEO Read": veo_up, "VE User DMA": udma_up, "VE SHM": wl_up,
        },
    }


def measure_table4(peak_sizes: list[int] | None = None) -> dict[str, float]:
    """Table IV peak bandwidths (bytes/s)."""
    peak_sizes = peak_sizes or [64 * MIB, 128 * MIB, 256 * MIB]
    max_size = max(peak_sizes)
    machine = AuroraMachine(
        num_ves=1,
        ve_memory_bytes=2 * max_size + 32 * MIB,
        vh_memory_bytes=max_size + 16 * MIB,
    )
    proc = VeoProc(machine, 0)
    veo_down, veo_up = measure_veo_bandwidth(machine, proc, peak_sizes, rep_base=2)
    udma_down, udma_up = measure_udma_bandwidth(machine, peak_sizes, rep_base=2)
    wl_down, wl_up = measure_shm_lhm_bandwidth(
        machine, [FIG10_SHM_LHM_MAX], rep_base=2
    )
    proc.destroy()
    return {
        "veo_write": max(veo_down),
        "veo_read": max(veo_up),
        "udma_read": max(udma_down),
        "udma_write": max(udma_up),
        "lhm": wl_down[0],
        "shm": wl_up[0],
    }


# -- smaller experiments -----------------------------------------------------------


def measure_numa_penalty(reps: int = 40) -> dict[str, float]:
    """S1: empty-offload cost per protocol from both CPU sockets."""
    out = {}
    for name, backend_cls in (("dma", DmaCommBackend), ("veo", VeoCommBackend)):
        for socket in (0, 1):
            runtime = Runtime(backend_cls(AuroraMachine(num_ves=1, socket=socket)))
            stats = measure_sim(
                lambda: runtime.sync(1, f2f(_empty_kernel)),
                runtime.backend.sim, reps=reps,
            )
            runtime.shutdown()
            out[f"{name}_socket{socket}"] = stats.mean
    return out


def measure_dma_manager_ablation(
    sizes: list[int] | None = None,
) -> dict[str, dict[int, float]]:
    """A1: VEO write bandwidth with the classic vs 4dma DMA manager."""
    sizes = sizes or [MIB, 8 * MIB, 64 * MIB]
    out: dict[str, dict[int, float]] = {}
    for label, four_dma in (("classic", False), ("4dma", True)):
        machine = AuroraMachine(
            num_ves=1, four_dma=four_dma,
            ve_memory_bytes=max(sizes) + 32 * MIB,
            vh_memory_bytes=max(sizes) + 32 * MIB,
        )
        proc = VeoProc(machine, 0)
        down, _up = measure_veo_bandwidth(machine, proc, sizes, rep_base=4)
        proc.destroy()
        out[label] = dict(zip(sizes, down))
    return out


def measure_hugepages_ablation(
    sizes: list[int] | None = None,
) -> dict[str, dict[int, float]]:
    """A2: VEO write bandwidth with huge vs 4 KiB pages on the VH buffer."""
    sizes = sizes or [256 * 1024, 4 * MIB, 32 * MIB]
    machine = AuroraMachine(
        num_ves=1, ve_memory_bytes=max(sizes) + 16 * MIB,
        vh_memory_bytes=2 * max(sizes) + 32 * MIB,
    )
    proc = VeoProc(machine, 0)
    ve_addr = proc.alloc_mem(max(sizes))
    out: dict[str, dict[int, float]] = {}
    for label, page in (("huge", PAGE_HUGE_2M), ("small", PAGE_4K)):
        vh_buf = machine.vh.ddr.allocate(max(sizes), page_size=page)
        out[label] = {}
        for size in sizes:
            stats = measure_sim(
                lambda s=size: proc.transfer_region(
                    machine.vh.ddr, vh_buf.addr, ve_addr, s,
                    direction="vh_to_ve", page_size=page,
                ),
                machine.sim, reps=scaled_reps(size, base=4, floor=2), warmup=1,
            )
            out[label][size] = stats.bandwidth(size)
        machine.vh.ddr.free(vh_buf)
    proc.destroy()
    return out


def measure_multi_ve_scaling(
    ve_counts: list[int] | None = None,
    *,
    kernel_time: float = 50e-6,
    rounds: int = 12,
) -> dict[int, float]:
    """M1: DMA-protocol offload throughput (offloads/s) vs VE count."""
    ve_counts = ve_counts or [1, 2, 4, 8]
    out = {}
    for num_ves in ve_counts:
        machine = AuroraMachine(num_ves=num_ves)
        backend = DmaCommBackend(machine)
        backend.kernel_cost_fn = lambda functor: kernel_time
        runtime = Runtime(backend)
        sim = backend.sim
        targets = runtime.targets()
        for node in targets:
            runtime.sync(node, f2f(_empty_kernel))
        start = sim.now
        completed = 0
        for _ in range(rounds):
            futures = [runtime.async_(node, f2f(_empty_kernel)) for node in targets]
            for future in futures:
                future.get()
                completed += 1
        out[num_ves] = completed / (sim.now - start)
        runtime.shutdown()
    return out


def measure_pipeline_throughput(
    invokes: int = 48,
    *,
    kernel_seconds: float = 0.02,
    workers: int = 4,
    window: int = 16,
) -> dict[str, float]:
    """P2: pipelined vs serial TCP invoke throughput (wall clock).

    The serial baseline issues ``sync`` offloads one at a time, so every
    invocation pays the full roundtrip plus kernel latency. The
    pipelined run keeps up to ``window`` invocations in flight through
    the channel's correlation-id table while the target's worker pool
    overlaps the kernels — sustained throughput approaches
    ``workers / kernel_seconds``. The kernel is a pure GIL-releasing
    sleep, so the measurement isolates transport pipelining from
    compute contention.

    Returns throughputs (invokes/s), wall times, the speedup, and the
    run parameters.
    """
    from repro.workloads.kernels import sleep_kernel

    results: dict[str, float] = {}
    for mode in ("serial", "pipelined"):
        process, address = spawn_local_server(workers=workers)
        backend = TcpBackend(
            address, on_shutdown=lambda p=process: p.join(timeout=10)
        )
        runtime = Runtime(backend, window=window)
        runtime.sync(1, f2f(sleep_kernel, 0.0))  # warm the path
        start = time.perf_counter()
        if mode == "serial":
            for _ in range(invokes):
                runtime.sync(1, f2f(sleep_kernel, kernel_seconds))
        else:
            futures = [
                runtime.async_(1, f2f(sleep_kernel, kernel_seconds))
                for _ in range(invokes)
            ]
            for future in futures:
                future.get()
        elapsed = time.perf_counter() - start
        results[f"{mode}_seconds"] = elapsed
        results[f"{mode}_throughput"] = invokes / elapsed
        runtime.shutdown()
    results["speedup"] = (
        results["pipelined_throughput"] / results["serial_throughput"]
    )
    results["invokes"] = float(invokes)
    results["kernel_seconds"] = kernel_seconds
    results["workers"] = float(workers)
    results["window"] = float(window)
    return results


def measure_saturation(
    depths: "tuple[int, ...]" = (64, 256, 1024, 4096, 10_000),
    *,
    workers: int = 4,
    shm_cap: int = 512,
) -> dict:
    """S2: pipelined small-message invoke rate vs in-flight depth.

    The event-loop acceptance experiment: empty-kernel invokes (≤256 B
    frames) posted ``depth`` at a time through one connection, all
    replies multiplexed on the shared reactor thread. TCP runs twice
    per depth — coalescing off (one ``sendmsg`` per frame, the
    threaded-receiver era's wire behavior) and on (adaptive batching)
    — and reports the ratio as ``batch_speedup``; shm runs once per
    depth (the rings coalesce physically, there is no knob).

    The window equals the offered depth for TCP; shm is clamped to
    ``shm_cap`` because in-flight frames live inside the fixed-size
    ring segment.

    Returns ``{transport: {depth_<n>: {..._rate, batch_speedup}},
    params}`` — rates in invokes/s, every metric named so the
    regression gate treats it as higher-is-better.
    """
    from repro.backends.shm import ShmBackend, spawn_shm_server

    results: dict = {
        "params": {"workers": workers, "depths": list(depths)},
        "tcp": {},
        "shm": {},
    }
    for mode, batch in (("unbatched", False), ("batched", True)):
        process, address = spawn_local_server(workers=workers)
        backend = TcpBackend(
            address, batch=batch,
            on_shutdown=lambda p=process: p.join(timeout=10),
        )
        runtime = Runtime(backend, window=max(depths))
        try:
            for _ in range(100):  # warm the path end to end
                runtime.sync(1, f2f(_empty_kernel))
            for depth in depths:
                backend.set_inflight_limit(depth)
                start = time.perf_counter()
                futures = [
                    runtime.async_(1, f2f(_empty_kernel))
                    for _ in range(depth)
                ]
                for future in futures:
                    future.get()
                rate = depth / (time.perf_counter() - start)
                results["tcp"].setdefault(f"depth_{depth}", {})[
                    f"{mode}_rate"
                ] = rate
        finally:
            runtime.shutdown()
    for depth, row in results["tcp"].items():
        row["batch_speedup"] = row["batched_rate"] / row["unbatched_rate"]
    process, segment = spawn_shm_server(workers=workers)
    shm = ShmBackend(
        segment,
        alive_fn=process.is_alive,
        on_shutdown=lambda: process.join(timeout=10),
    )
    runtime = Runtime(shm, window=shm_cap)
    try:
        for _ in range(100):
            runtime.sync(1, f2f(_empty_kernel))
        for depth in depths:
            shm.set_inflight_limit(min(depth, shm_cap))
            start = time.perf_counter()
            futures = [
                runtime.async_(1, f2f(_empty_kernel)) for _ in range(depth)
            ]
            for future in futures:
                future.get()
            results["shm"][f"depth_{depth}"] = {
                "rate": depth / (time.perf_counter() - start)
            }
    finally:
        runtime.shutdown()
    return results


def measure_batch_gate(
    depth: int = 1024, *, rounds: int = 5, workers: int = 4
) -> dict[str, float]:
    """S2 gate: coalescing on vs off at one pipelined depth, interleaved.

    The regression-gate companion of :func:`measure_saturation`: two
    identical server processes, one connection with adaptive coalescing
    and one without, bursts of ``depth`` empty-kernel invokes alternated
    between them ``rounds`` times so scheduler drift on a shared runner
    hits both modes equally. Rates are medians over rounds; the
    headline is their ratio (``batch_speedup``).

    The unbatched mode (one ``sendmsg`` + one peer wakeup per frame) is
    the wire behavior of the threaded-receiver era, so the ratio is the
    machine-independent form of "batched throughput vs the threaded
    baseline".
    """
    import statistics

    runtimes: dict[str, Runtime] = {}
    rates: dict[str, list[float]] = {"unbatched": [], "batched": []}
    try:
        for mode, batch in (("unbatched", False), ("batched", True)):
            process, address = spawn_local_server(workers=workers)
            backend = TcpBackend(
                address, batch=batch,
                on_shutdown=lambda p=process: p.join(timeout=10),
            )
            runtime = Runtime(backend, window=depth)
            for _ in range(100):
                runtime.sync(1, f2f(_empty_kernel))
            runtimes[mode] = runtime
        for _ in range(rounds):
            for mode, runtime in runtimes.items():
                start = time.perf_counter()
                futures = [
                    runtime.async_(1, f2f(_empty_kernel))
                    for _ in range(depth)
                ]
                for future in futures:
                    future.get()
                rates[mode].append(depth / (time.perf_counter() - start))
    finally:
        for runtime in runtimes.values():
            runtime.shutdown()
    unbatched = statistics.median(rates["unbatched"])
    batched = statistics.median(rates["batched"])
    return {
        "depth": float(depth),
        "rounds": float(rounds),
        "unbatched_rate": unbatched,
        "batched_rate": batched,
        "batch_speedup": batched / unbatched,
    }


def measure_telemetry_overhead(
    invokes: int = 100, *, kernel_seconds: float = 0.01, warmup: int = 20
) -> dict[str, float]:
    """T1: telemetry sampling overhead on the TCP round trip.

    Measures the mean ``sync`` round trip of a representative kernel
    (``sleep_kernel(kernel_seconds)``, millisecond scale like the
    paper's offload workloads) under four telemetry modes on identical
    fresh servers: disabled entirely, and head-sampling at rates
    0.0 / 0.01 / 1.0 (each with the tail pipeline installed, as
    ``offload.init(telemetry={"sample_rate": p})`` would). The recorder
    is enabled *before* the server fork so the target side records (or
    skips) spans exactly as in production.

    The headline metrics are the ``overhead_rate_*`` ratios vs the
    disabled baseline — the acceptance bar is <= 5% at rate 0.01. The
    ratios divide out machine speed, so they regress far less noisily
    than the absolute means. The kernel carries real work on purpose:
    on a single-CPU container every microsecond of two-process Python
    bookkeeping serializes into an empty-kernel round trip, which
    measures context-switch amplification, not telemetry cost.

    Two extra modes bound the *flight recorder* (always-on post-mortem
    ring, :mod:`repro.telemetry.flightrecorder`): ``flight_off``
    disables its noting entirely, while ``disabled`` (the sampling
    baseline) runs with the recorder armed, as every process does by
    default. ``overhead_flight_on`` is their ratio and must clear the
    same <= 5% bar — "always-on" is only defensible while it stays
    free on the happy path.
    """
    from repro.telemetry import flightrecorder
    from repro.telemetry import recorder as telemetry_recorder
    from repro.telemetry.sampling import HeadSampler, TailPipeline
    from repro.workloads.kernels import sleep_kernel

    # (name, head-sampling rate or None for telemetry-off, flight ring
    # noting enabled). The flight ring is on in every mode but one —
    # exactly how production runs.
    modes: list[tuple[str, float | None, bool]] = [
        ("flight_off", None, False),
        ("disabled", None, True),
        ("rate_0", 0.0, True),
        ("rate_0_01", 0.01, True),
        ("rate_1", 1.0, True),
    ]
    results: dict[str, float] = {}
    flight = flightrecorder.get()
    for mode, rate, flight_on in modes:
        telemetry_recorder.disable()
        try:
            flight.enabled = flight_on
            if rate is not None:
                recorder = telemetry_recorder.enable()
                recorder.sampler = HeadSampler(rate)
                recorder.pipeline = TailPipeline()
            process, address = spawn_local_server()
            backend = TcpBackend(
                address, on_shutdown=lambda p=process: p.join(timeout=10)
            )
            runtime = Runtime(backend)
            for _ in range(warmup):
                runtime.sync(1, f2f(sleep_kernel, 0.0))
            start = time.perf_counter()
            for _ in range(invokes):
                runtime.sync(1, f2f(sleep_kernel, kernel_seconds))
            elapsed = time.perf_counter() - start
            runtime.shutdown()
        finally:
            telemetry_recorder.disable()
            flight.enabled = True
        results[f"{mode}_mean_us"] = elapsed / invokes * 1e6
    for mode, _rate, _flight_on in modes[2:]:
        results[f"overhead_{mode}"] = (
            results[f"{mode}_mean_us"] / results["disabled_mean_us"]
        )
    results["overhead_flight_on"] = (
        results["disabled_mean_us"] / results["flight_off_mean_us"]
    )
    results["invokes"] = float(invokes)
    results["kernel_seconds"] = kernel_seconds
    return results


def measure_tsdb_overhead(
    invokes: int = 100, *, kernel_seconds: float = 0.01, warmup: int = 20
) -> dict[str, float]:
    """T2: TSDB sampler overhead on the TCP round trip.

    Measures the mean ``sync`` round trip of the same representative
    millisecond-scale kernel as :func:`measure_telemetry_overhead`, with
    the event recorder enabled in both modes, and compares telemetry
    alone (``tsdb_off``) against telemetry plus the in-process
    time-series sampler ticking at its production 1 s interval with the
    runtime attached (``tsdb_on``, as
    ``offload.init(telemetry={"tsdb": True})`` configures it).

    The headline metric is the ``overhead_tsdb_on`` ratio — the
    acceptance bar is <= 2%. The sampler runs on its own daemon thread
    and each tick is one registry snapshot plus one scoreboard refresh,
    so on a 10 ms kernel the steady-state cost should be far below the
    bar; the gate exists to catch a regression that moves sampling work
    onto the offload path (per-invoke hooks, lock contention on the
    registry).
    """
    from repro.telemetry import recorder as telemetry_recorder
    from repro.telemetry.tsdb import install_tsdb
    from repro.workloads.kernels import sleep_kernel

    results: dict[str, float] = {}
    for mode, sampler_on in (("tsdb_off", False), ("tsdb_on", True)):
        telemetry_recorder.disable()
        tsdb = None
        recorder = telemetry_recorder.enable()
        try:
            if sampler_on:
                tsdb = install_tsdb(recorder, interval=1.0)
            process, address = spawn_local_server()
            backend = TcpBackend(
                address, on_shutdown=lambda p=process: p.join(timeout=10)
            )
            runtime = Runtime(backend)
            if tsdb is not None:
                tsdb.attach_runtime(runtime)
                tsdb.start()
            for _ in range(warmup):
                runtime.sync(1, f2f(sleep_kernel, 0.0))
            start = time.perf_counter()
            for _ in range(invokes):
                runtime.sync(1, f2f(sleep_kernel, kernel_seconds))
            elapsed = time.perf_counter() - start
            runtime.shutdown()
        finally:
            if tsdb is not None:
                tsdb.stop()
                recorder.tsdb = None
            telemetry_recorder.disable()
        results[f"{mode}_mean_us"] = elapsed / invokes * 1e6
    results["overhead_tsdb_on"] = (
        results["tsdb_on_mean_us"] / results["tsdb_off_mean_us"]
    )
    results["invokes"] = float(invokes)
    results["kernel_seconds"] = kernel_seconds
    return results


def _burst_ping_tcp(backend: TcpBackend, depth: int) -> float:
    """Seconds for one depth-``depth`` pipelined ping burst over TCP.

    Mirrors ``TcpBackend._roundtrip`` but files all ``depth``
    expectations before waiting, so replies stream back while later
    requests are still going out — the transport-level analogue of the
    invoke window, with serialization cost excluded.
    """
    import threading

    from repro.backends.tcp import OP_PING

    start = time.perf_counter()
    boxes = []
    for _ in range(depth):
        corr = backend._next_corr()
        box: dict = {"op": OP_PING, "event": threading.Event()}
        with backend._pending_lock:
            backend._pending[corr] = ("sync", box)
        backend._send(OP_PING, corr)
        boxes.append(box)
    for box in boxes:
        if not box["event"].wait(10.0):
            raise RuntimeError("tcp ping burst timed out")
    return time.perf_counter() - start


def _burst_ping_shm(backend, depth: int) -> float:
    """Seconds for one depth-``depth`` pipelined ping burst over shm.

    Holds the drive lock for the whole burst (the bench owns the
    backend, so no other thread is waiting on replies) and pumps the
    reply ring directly — the shm analogue of :func:`_burst_ping_tcp`.
    """
    from repro.backends.base import InvokeHandle
    from repro.backends.tcp import OP_PING, OP_REPLY_BIT

    ring_out, ring_in = backend._h2t, backend._t2h
    expected = OP_PING | OP_REPLY_BIT
    with backend._drive_lock:
        start = time.perf_counter()
        for _ in range(depth):
            corr = next(InvokeHandle._ids)
            with backend._send_lock:
                ring_out.write_frame(OP_PING, corr, ())
        for _ in range(depth):
            ring_in.wait_readable(10.0, stop=backend._peer_error_cb)
            op, _corr, _body = ring_in.read_frame()
            if op != expected:
                raise RuntimeError(f"unexpected reply op {op:#x}")
        return time.perf_counter() - start


def measure_shm_latency(
    samples: int = 300,
    *,
    rounds: int = 4,
    burst_depth: int = 8,
    burst_rounds: int = 40,
    workers: int = 2,
) -> dict[str, float]:
    """S1: shared-memory vs TCP transport on localhost (wall clock).

    The real-path counterpart of the paper's Sec. IV-B headline (6.1 µs
    shm/DMA offload vs 432 µs daemon-mediated VEO): the same two-process
    machine measures

    * **small-message RTT** — synchronous ``ping`` (empty active
      message, full request/reply), per-call samples interleaved
      ``rounds`` times between the two transports so scheduler drift
      hits both equally; the headline is the ratio of medians; and
    * **pipelined message throughput** — depth-``burst_depth`` ping
      bursts (all requests posted before the first reply is awaited),
      the transport-level analogue of the in-flight invoke window with
      serialization excluded, reported as messages/second.

    On a single-CPU host every synchronous RTT pays two mandatory
    context switches (~2-3 µs) that bound the shm advantage; with
    host and target on separate cores the shm side busy-spins through
    the wait and the gap widens by roughly another order of magnitude,
    which is exactly the paper's LHM/SHM-polling argument.
    """
    import statistics

    from repro.backends.shm import ShmBackend, spawn_shm_server

    shm_process, segment = spawn_shm_server(workers=workers)
    shm = ShmBackend(
        segment,
        alive_fn=shm_process.is_alive,
        on_shutdown=lambda: shm_process.join(timeout=10),
    )
    tcp_process, address = spawn_local_server(workers=workers)
    tcp = TcpBackend(
        address, on_shutdown=lambda: tcp_process.join(timeout=10)
    )
    try:
        for _ in range(200):  # warm both paths (allocators, caches, JITs)
            shm.ping(1)
            tcp.ping(1)

        shm_samples: list[float] = []
        tcp_samples: list[float] = []
        for _ in range(rounds):
            for backend, sink in ((shm, shm_samples), (tcp, tcp_samples)):
                for _ in range(samples):
                    start = time.perf_counter()
                    backend.ping(1)
                    sink.append((time.perf_counter() - start) * 1e6)

        shm_burst: list[float] = []
        tcp_burst: list[float] = []
        for _ in range(5):  # burst warmup
            _burst_ping_shm(shm, burst_depth)
            _burst_ping_tcp(tcp, burst_depth)
        for _ in range(burst_rounds):
            shm_burst.append(_burst_ping_shm(shm, burst_depth))
            tcp_burst.append(_burst_ping_tcp(tcp, burst_depth))
    finally:
        shm.shutdown()
        tcp.shutdown()

    def p95(values: list[float]) -> float:
        return statistics.quantiles(values, n=20)[18]

    shm_rtt = statistics.median(shm_samples)
    tcp_rtt = statistics.median(tcp_samples)
    shm_msgs = burst_depth / statistics.median(shm_burst)
    tcp_msgs = burst_depth / statistics.median(tcp_burst)
    return {
        "shm_rtt_time_us": shm_rtt,
        "shm_rtt_p95_time_us": p95(shm_samples),
        "shm_rtt_mean_time_us": statistics.mean(shm_samples),
        "tcp_rtt_time_us": tcp_rtt,
        "tcp_rtt_p95_time_us": p95(tcp_samples),
        "tcp_rtt_mean_time_us": statistics.mean(tcp_samples),
        "transport_rtt_speedup": tcp_rtt / shm_rtt,
        "shm_throughput": shm_msgs,
        "tcp_throughput": tcp_msgs,
        "transport_throughput_speedup": shm_msgs / tcp_msgs,
        "samples": float(samples * rounds),
        "burst_depth": float(burst_depth),
        "burst_rounds": float(burst_rounds),
        "workers": float(workers),
    }


def measure_switch_contention(transfer: int = 16 * MIB) -> dict[str, float]:
    """M2: aggregate VE→VH user-DMA bandwidth by VE placement."""

    def aggregate(ve_indices: list[int]) -> float:
        machine = AuroraMachine(num_ves=8, ve_memory_bytes=transfer + 16 * MIB)
        sim = machine.sim
        done = []
        for index in ve_indices:
            ve = machine.ve(index)
            segment = machine.vh.shmget(transfer)
            entry = ve.dmaatb.register(segment, 0, transfer)
            staging = ve.hbm.allocate(transfer)
            done.append(
                sim.process(
                    ve.udma.write_host(ve.hbm, staging.addr, entry.vehva, transfer)
                )
            )
        start = sim.now
        sim.run(until=sim.all_of(done))
        return len(ve_indices) * transfer / (sim.now - start)

    return {
        "one_ve": aggregate([0]),
        "four_same_switch": aggregate([0, 1, 2, 3]),
        "four_across_switches": aggregate([0, 1, 4, 5]),
        "eight": aggregate(list(range(8))),
    }


def measure_qos(
    premium_ops: int = 80,
    *,
    noisy_threads: int = 6,
    kernel_seconds: float = 0.004,
    window: int = 4,
    straggler_invokes: int = 160,
    straggle_every: int = 32,
    straggle_seconds: float = 0.25,
) -> dict[str, float]:
    """Q1: overload-resilient serving — fair queuing and hedged requests.

    Two measurements against live TCP stacks:

    * **Fairness**: ``noisy_threads`` best-effort workers flood the
      backend while one premium tenant keeps a steady trickle of
      ``premium_ops`` offloads. Measured twice — over the plain FIFO
      window and over the QoS layer (weighted fair window, premium
      weight 8 / priority PREMIUM) — the headline is the premium
      tenant's p99 latency and the FIFO/QoS ratio
      (``qos_premium_speedup``).
    * **Hedging**: ``straggler_invokes`` offloads of
      :func:`~repro.workloads.kernels.intermittent_straggler` (every
      ``straggle_every``-th call on a target sleeps ``straggle_seconds``
      instead of ``kernel_seconds``) against a two-target
      :class:`~repro.backends.fanout.FanoutBackend`, without and with a
      :class:`~repro.offload.hedging.HedgePolicy`. The headline is the
      max (tail) latency ratio (``hedge_tail_speedup``) and the
      duplicate-execution rate (``hedge_duplicate_overhead``, bounded
      near ``1 / straggle_every``).
    """
    import threading

    from repro.backends import FanoutBackend
    from repro.errors import ReproError
    from repro.offload import (
        BEST_EFFORT,
        PREMIUM,
        HedgePolicy,
        QoSConfig,
        ResiliencePolicy,
        TenantPolicy,
    )
    from repro.telemetry import recorder as telemetry_recorder
    from repro.workloads.kernels import intermittent_straggler, sleep_kernel

    results: dict[str, float] = {}

    # -- fairness under flood: FIFO window vs weighted fair window ---------
    qos_config = QoSConfig(
        tenants={
            "premium": TenantPolicy(weight=8.0, priority=PREMIUM),
            "noisy": TenantPolicy(weight=1.0, priority=BEST_EFFORT),
        },
        window=window,
        max_queue_depth=4 * noisy_threads,
    )
    for mode, qos in (("fifo", None), ("qos", qos_config)):
        process, address = spawn_local_server(workers=2)
        backend = TcpBackend(
            address, on_shutdown=lambda p=process: p.join(timeout=10)
        )
        runtime = (
            Runtime(backend, window=window) if qos is None
            else Runtime(backend, qos=qos)
        )
        runtime.sync(1, f2f(sleep_kernel, 0.0), tenant="premium")  # warm
        stop = threading.Event()

        def flood() -> None:
            functor = f2f(sleep_kernel, kernel_seconds)
            while not stop.is_set():
                try:
                    runtime.sync(1, functor, tenant="noisy", timeout=5.0)
                except ReproError:
                    time.sleep(0.001)  # shed/rejected: back off, retry

        workers = [
            threading.Thread(target=flood, daemon=True)
            for _ in range(noisy_threads)
        ]
        for worker in workers:
            worker.start()
        time.sleep(0.1)  # let the flood saturate the window first
        latencies = []
        functor = f2f(sleep_kernel, kernel_seconds)
        for _ in range(premium_ops):
            begin = time.perf_counter()
            runtime.sync(1, functor, tenant="premium", timeout=10.0)
            latencies.append(time.perf_counter() - begin)
            time.sleep(0.002)  # a steady trickle, not a counter-flood
        stop.set()
        for worker in workers:
            worker.join(timeout=10.0)
        runtime.shutdown()
        results[f"premium_p99_latency_{mode}"] = float(
            np.percentile(latencies, 99)
        )
        results[f"premium_mean_latency_{mode}"] = float(np.mean(latencies))
    results["qos_premium_speedup"] = (
        results["premium_p99_latency_fifo"] / results["premium_p99_latency_qos"]
    )

    # -- hedged requests vs a deterministic intermittent straggler ---------
    # min_wait sits 5x above the base service time (far below the
    # straggle), so TCP round-trip jitter on normal calls cannot fire
    # spurious hedges and inflate the duplicate rate.
    hedge_policy = HedgePolicy(
        percentile=95.0, multiplier=1.0, min_wait=5 * kernel_seconds,
        min_samples=10,
    )
    for mode, hedge in (("unhedged", None), ("hedged", hedge_policy)):
        telemetry_recorder.disable()
        recorder = telemetry_recorder.enable()
        servers = [spawn_local_server(workers=2) for _ in range(2)]
        inners = [
            TcpBackend(address, on_shutdown=lambda p=proc: p.join(timeout=10))
            for proc, address in servers
        ]
        backend = FanoutBackend(inners)
        policy = ResiliencePolicy(hedge=hedge)
        runtime = Runtime(backend, policy=policy)
        functor = f2f(
            intermittent_straggler,
            kernel_seconds, straggle_seconds, straggle_every, 1.0,
        )
        runtime.sync(1, functor, idempotent=True)  # warm both the paths
        # Steady-state trigger: the rolling profile has already seen the
        # kernel's normal service time (seeded directly — equivalent to
        # a warmed-up serving process, without burning straggle slots).
        for _ in range(3 * hedge_policy.min_samples):
            recorder.profiles.record(
                functor.type_name, int(kernel_seconds * 1e9)
            )
        latencies = []
        for _ in range(straggler_invokes):
            begin = time.perf_counter()
            runtime.sync(1, functor, idempotent=True, timeout=10.0)
            latencies.append(time.perf_counter() - begin)
        hedges = (
            runtime.stats()["hedging"]["hedges"] if hedge is not None else 0
        )
        runtime.shutdown()
        telemetry_recorder.disable()
        results[f"{mode}_max_latency"] = float(np.max(latencies))
        results[f"{mode}_p99_latency"] = float(np.percentile(latencies, 99))
        if hedge is not None:
            results["hedge_duplicate_overhead"] = hedges / straggler_invokes
    results["hedge_tail_speedup"] = (
        results["unhedged_max_latency"] / results["hedged_max_latency"]
    )
    results["premium_ops"] = float(premium_ops)
    results["noisy_threads"] = float(noisy_threads)
    results["straggler_invokes"] = float(straggler_invokes)
    results["straggle_every"] = float(straggle_every)
    return results
