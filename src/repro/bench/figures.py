"""ASCII rendering of figure data (bandwidth curves &c.).

``render_series`` prints a figure's data as aligned columns — the exact
numbers behind a plot, paper-appendix style. ``ascii_chart`` additionally
draws a rough log-log terminal chart, which is enough to eyeball the
crossovers the paper discusses (LHM vs user DMA, SHM vs user DMA).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.bench.tables import format_size

__all__ = ["ascii_chart", "render_series"]


def render_series(
    x_values: Sequence[int],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "size",
    value_format: str = "{:.4g}",
) -> str:
    """Tabulate several named series over shared x values."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    rows = []
    for i, x in enumerate(x_values):
        row = {x_label: format_size(int(x))}
        for name in names:
            value = series[name][i]
            row[name] = value_format.format(value) if value == value else "-"
        rows.append(row)
    from repro.bench.tables import render_table

    return render_table(rows, title=title, columns=[x_label, *names])


_MARKS = "*o+x#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Draw a coarse ASCII chart of several series.

    NaN values are skipped (series measured over fewer sizes, like
    SHM/LHM capped at 4 MiB in the paper).
    """
    points: list[tuple[float, float, int]] = []
    for index, name in enumerate(series):
        for x, y in zip(x_values, series[name]):
            if y != y or y <= 0 or x <= 0:  # NaN / non-positive on log axes
                continue
            px = math.log10(x) if log_x else x
            py = math.log10(y) if log_y else y
            points.append((px, py, index))
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for px, py, index in points:
        col = round((px - x_lo) / x_span * (width - 1))
        row = height - 1 - round((py - y_lo) / y_span * (height - 1))
        grid[row][col] = _MARKS[index % len(_MARKS)]
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)
