"""Perf-regression gate — ``python -m repro.bench.regression``.

Compares a directory of freshly produced ``BENCH_*.json`` payloads (from
``python -m repro.bench.cli ... --json-dir``) against a committed
baseline directory and exits non-zero when a metric regressed beyond the
tolerance band. The benchmark harness runs on simulated time, so quick
runs are deterministic and the default band is tight; on real hardware a
wider ``--tolerance`` absorbs noise.

Usage::

    python -m repro.bench.cli all --quick --json-dir /tmp/bench
    python -m repro.bench.regression --fresh /tmp/bench \
        --baseline benchmarks/results/baseline
    # refresh the committed baseline after an intentional perf change:
    python -m repro.bench.regression --fresh /tmp/bench \
        --baseline benchmarks/results/baseline --update-baseline

Every numeric leaf of each payload's ``data`` tree is one metric (lists
are compared by their median, so sweep curves collapse to one number per
series). Whether a shift is a regression depends on the metric's
direction, inferred from its path: times/costs/latencies regress when
they go *up*, bandwidths/rates/peaks when they go *down*; unrecognized
metrics are held two-sided.
"""

from __future__ import annotations

import argparse
import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.bench.tables import render_table
from repro.telemetry.metrics import percentile

__all__ = [
    "Comparison",
    "compare_dirs",
    "direction_for",
    "flatten_metrics",
    "main",
]

#: Path tokens implying "smaller is better" (times and costs).
_LOWER_BETTER = (
    "time", "cost", "latency", "duration", "overhead", "seconds",
    "fig9", "numa",
)
#: Path tokens implying "larger is better" (bandwidths and rates).
_HIGHER_BETTER = (
    "bandwidth", "throughput", "rate", "peak", "contention", "multi_ve",
    "speedup", "fig10", "table4", "scaling", "dma_manager", "hugepage",
    "pipeline",
)


def direction_for(path: str) -> str:
    """``"lower"`` / ``"higher"`` / ``"both"`` for a metric path.

    Checked against the full path (file stem included), lower-better
    tokens first: a time measured inside a bandwidth suite is still a
    time.
    """
    lowered = path.lower()
    if any(token in lowered for token in _LOWER_BETTER):
        return "lower"
    if any(token in lowered for token in _HIGHER_BETTER):
        return "higher"
    return "both"


def _walk(obj: Any, path: str) -> Iterator[tuple[str, float]]:
    if isinstance(obj, dict):
        for key in sorted(obj):
            yield from _walk(obj[key], f"{path}/{key}")
    elif isinstance(obj, (list, tuple)):
        numbers = [v for v in obj if isinstance(v, (int, float))
                   and not isinstance(v, bool)]
        if numbers:
            yield f"{path}[median]", percentile(numbers, 50)
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        yield path, float(obj)


def flatten_metrics(payload: dict, stem: str) -> dict[str, float]:
    """``{metric_path: value}`` for one BENCH payload's ``data`` tree."""
    return dict(_walk(payload.get("data", {}), stem))


@dataclass(frozen=True)
class Comparison:
    """One metric's baseline-vs-fresh verdict."""

    path: str
    baseline: float | None
    fresh: float | None
    delta: float  # signed relative change, fresh vs baseline
    direction: str
    status: str  # "ok" | "improved" | "regressed" | "missing" | "new"


def _compare_metric(
    path: str, baseline: float | None, fresh: float | None, tolerance: float
) -> Comparison:
    direction = direction_for(path)
    if baseline is None:
        return Comparison(path, None, fresh, 0.0, direction, "new")
    if fresh is None:
        return Comparison(path, baseline, None, 0.0, direction, "missing")
    if baseline == 0.0:
        delta = 0.0 if fresh == 0.0 else float("inf")
    else:
        delta = (fresh - baseline) / abs(baseline)
    if abs(delta) <= tolerance:
        status = "ok"
    elif direction == "lower":
        status = "regressed" if delta > 0 else "improved"
    elif direction == "higher":
        status = "regressed" if delta < 0 else "improved"
    else:
        status = "regressed"
    return Comparison(path, baseline, fresh, delta, direction, status)


def _load_dir(directory: Path) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for file in sorted(directory.glob("BENCH_*.json")):
        payload = json.loads(file.read_text())
        metrics.update(flatten_metrics(payload, file.stem))
    return metrics


def compare_dirs(
    baseline_dir: Path, fresh_dir: Path, tolerance: float
) -> list[Comparison]:
    """Compare every metric of two BENCH directories."""
    baseline = _load_dir(baseline_dir)
    fresh = _load_dir(fresh_dir)
    return [
        _compare_metric(path, baseline.get(path), fresh.get(path), tolerance)
        for path in sorted(set(baseline) | set(fresh))
    ]


def _render(comparisons: list[Comparison], verbose: bool) -> str:
    rows = []
    for comparison in comparisons:
        if not verbose and comparison.status == "ok":
            continue
        rows.append({
            "metric": comparison.path,
            "baseline": "-" if comparison.baseline is None
            else f"{comparison.baseline:.6g}",
            "fresh": "-" if comparison.fresh is None
            else f"{comparison.fresh:.6g}",
            "delta": f"{comparison.delta:+.2%}",
            "dir": comparison.direction,
            "status": comparison.status,
        })
    if not rows:
        return "all metrics within tolerance"
    return render_table(rows, title="bench regression check")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code (1 on regression)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-regression",
        description="Compare fresh BENCH_*.json files against a committed "
        "baseline; non-zero exit on regression.",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", type=Path,
        default=Path("benchmarks/results/baseline"),
        help="committed baseline directory (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative tolerance band per metric (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="copy the fresh BENCH files over the baseline and exit 0",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list metrics that stayed within tolerance",
    )
    args = parser.parse_args(argv)
    fresh_files = sorted(args.fresh.glob("BENCH_*.json")) \
        if args.fresh.is_dir() else []
    if not fresh_files:
        parser.error(f"no BENCH_*.json files in {args.fresh}")
    if args.update_baseline:
        args.baseline.mkdir(parents=True, exist_ok=True)
        for file in fresh_files:
            shutil.copy2(file, args.baseline / file.name)
        print(f"baseline updated: {len(fresh_files)} files -> {args.baseline}")
        return 0
    if not args.baseline.is_dir() or not list(args.baseline.glob("BENCH_*.json")):
        print(f"no baseline in {args.baseline}; "
              "run with --update-baseline to create one")
        return 2
    comparisons = compare_dirs(args.baseline, args.fresh, args.tolerance)
    print(_render(comparisons, args.verbose))
    regressed = [c for c in comparisons if c.status in ("regressed", "missing")]
    ok = sum(1 for c in comparisons if c.status == "ok")
    improved = sum(1 for c in comparisons if c.status == "improved")
    new = sum(1 for c in comparisons if c.status == "new")
    print(f"\n{len(comparisons)} metrics: {ok} ok, {improved} improved, "
          f"{new} new, {len(regressed)} regressed/missing "
          f"(tolerance {args.tolerance:.0%})")
    return 1 if regressed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
