"""Paper anchors and calibration checks.

Every quantitative claim extracted from the paper's evaluation (Sec. V)
is collected in :data:`PAPER`. :func:`check_timing_model` evaluates the
analytic timing model against these anchors; the protocol-level anchors
(Fig. 9) are checked end-to-end in ``tests/backends`` and
``benchmarks/``, since those numbers must *emerge* from protocol
execution.

Known tensions inside the paper's own numbers are documented in
EXPERIMENTS.md; where a compromise was needed, the anchor here records
the compromise target and its ``note`` explains the deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.memory import PAGE_HUGE_2M
from repro.hw.params import TimingModel, WORD
from repro.hw.specs import GIB, MIB

__all__ = [
    "PAPER",
    "PaperAnchors",
    "CalibrationCheck",
    "bandwidth_curve",
    "check_timing_model",
    "transfer_time",
]


@dataclass(frozen=True)
class PaperAnchors:
    """Quantitative anchors from the paper's text (units: seconds, bytes/s)."""

    # Fig. 9 — offload cost.
    fig9_veo_native: float = 80e-6
    fig9_ham_veo: float = 432e-6
    fig9_ham_dma: float = 6.1e-6
    fig9_ratio_ham_veo_over_native: float = 5.4
    fig9_ratio_native_over_ham_dma: float = 13.1
    fig9_ratio_ham_veo_over_ham_dma: float = 70.8
    #: Sec. V-A: 6.1 µs ≈ 1.2 µs PCIe round trip + ~5 µs framework.
    pcie_round_trip: float = 1.2e-6
    framework_overhead: float = 5.0e-6
    #: Sec. V-A: second socket adds "up to 1 µs".
    second_socket_extra_max: float = 1.0e-6

    # Table IV — peak bandwidths (GiB/s, converted to bytes/s).
    table4_veo_write: float = 9.9 * GIB  # VH => VE
    table4_veo_read: float = 10.4 * GIB  # VE => VH
    table4_udma_read: float = 10.6 * GIB  # VH => VE (VE DMA read)
    table4_udma_write: float = 11.1 * GIB  # VE => VH (VE DMA write)
    table4_lhm: float = 0.01 * GIB  # VH => VE word loads
    table4_shm: float = 0.06 * GIB  # VE => VH word stores

    # Sec. V intro — PCIe budget.
    pcie_theoretical_peak: float = 14.7 * GIB
    pcie_achievable_fraction: float = 0.91  # => 13.4 GiB/s

    # Fig. 10 shape claims.
    #: User DMA is near peak already at 1 MiB...
    udma_near_peak_size: int = 1 * MIB
    #: ...whereas VEO needs 64 MiB.
    veo_near_peak_size: int = 64 * MIB
    near_peak_fraction: float = 0.90
    #: Small-message user-DMA advantage over VEO: paper 24× (VH→VE) and
    #: 35× (VE→VH). Our VEO-op latency is pinned by the Fig. 9 anchors,
    #: which pushes these to ~40×; accept a band.
    small_ratio_band: tuple[float, float] = (20.0, 50.0)
    #: Large-transfer user-DMA advantage ≈ 7 %.
    large_ratio: float = 1.07
    #: LHM beats user DMA only for 1–2 words.
    lhm_win_words: int = 2
    #: SHM beats user DMA up to 256 B...
    shm_win_bytes: int = 256
    #: ...being ~89 % faster for one word...
    shm_single_word_advantage: float = 0.89
    #: ...down to ~16 % at 256 B.
    shm_256b_advantage: float = 0.16

    # Application-level context (Sec. V-A last ¶, from the Xeon Phi study).
    xeon_phi_cost_reduction: float = 13.7
    xeon_phi_app_speedup: float = 2.6


PAPER = PaperAnchors()


@dataclass(frozen=True)
class CalibrationCheck:
    """Outcome of one model-vs-anchor comparison."""

    name: str
    expected: float
    actual: float
    tolerance: float
    note: str = ""

    @property
    def passed(self) -> bool:
        """Whether the actual value is within tolerance of the anchor."""
        if self.expected == 0:
            return abs(self.actual) <= self.tolerance
        return abs(self.actual - self.expected) <= self.tolerance * abs(self.expected)

    @property
    def deviation(self) -> float:
        """Relative deviation from the anchor."""
        if self.expected == 0:
            return math.inf if self.actual else 0.0
        return self.actual / self.expected - 1.0


def transfer_time(
    timing: TimingModel, method: str, direction: str, size: int, *, upi_hops: int = 0
) -> float:
    """Analytic one-transfer duration for a Fig. 10 method.

    ``method``: ``"veo"``, ``"udma"`` or ``"shm_lhm"``; ``direction``:
    ``"vh_to_ve"`` or ``"ve_to_vh"``. For ``shm_lhm``, VH→VE means LHM
    loads, VE→VH means SHM stores (including the posted-store visibility
    delay, since a bandwidth measurement must observe arrival).
    """
    if method == "veo":
        return timing.veo_transfer_time(
            size, direction=direction, page_size=PAGE_HUGE_2M, upi_hops=upi_hops
        )
    if method == "udma":
        return timing.udma_transfer_time(size, direction=direction, upi_hops=upi_hops)
    if method == "shm_lhm":
        if direction == "vh_to_ve":
            return timing.lhm_time(size, upi_hops=upi_hops)
        # SHM stores are posted: timed at issue, the way the paper's
        # VE-side benchmark observes them (see EXPERIMENTS.md).
        return timing.shm_time(size)
    raise ValueError(f"unknown method {method!r}")


def bandwidth_curve(
    timing: TimingModel,
    method: str,
    direction: str,
    sizes: list[int],
    *,
    upi_hops: int = 0,
) -> list[float]:
    """Bandwidth (bytes/s) per size for one method/direction."""
    return [
        size / transfer_time(timing, method, direction, size, upi_hops=upi_hops)
        for size in sizes
    ]


def _peak(timing: TimingModel, method: str, direction: str, max_size: int) -> float:
    sizes = [2**e for e in range(3, int(math.log2(max_size)) + 1)]
    return max(bandwidth_curve(timing, method, direction, sizes))


def check_timing_model(timing: TimingModel) -> list[CalibrationCheck]:
    """Compare the analytic timing model against every paper anchor.

    Protocol-level anchors (Fig. 9 totals) are *not* checked here — they
    must emerge from protocol execution and are asserted in the backend
    tests and benchmarks.
    """
    checks: list[CalibrationCheck] = []
    add = checks.append

    # Table IV peaks (sustained plateau — see EXPERIMENTS.md note on SHM).
    add(CalibrationCheck(
        "table4.veo_write_peak", PAPER.table4_veo_write,
        _peak(timing, "veo", "vh_to_ve", 256 * MIB), 0.05,
    ))
    add(CalibrationCheck(
        "table4.veo_read_peak", PAPER.table4_veo_read,
        _peak(timing, "veo", "ve_to_vh", 256 * MIB), 0.05,
    ))
    add(CalibrationCheck(
        "table4.udma_read_peak", PAPER.table4_udma_read,
        _peak(timing, "udma", "vh_to_ve", 256 * MIB), 0.05,
    ))
    add(CalibrationCheck(
        "table4.udma_write_peak", PAPER.table4_udma_write,
        _peak(timing, "udma", "ve_to_vh", 256 * MIB), 0.05,
    ))
    add(CalibrationCheck(
        "table4.lhm_plateau", PAPER.table4_lhm,
        4 * MIB / transfer_time(timing, "shm_lhm", "vh_to_ve", 4 * MIB), 0.15,
        note="LHM sustained rate at the 4 MiB measurement cap",
    ))
    add(CalibrationCheck(
        "table4.shm_plateau", PAPER.table4_shm,
        4 * MIB / transfer_time(timing, "shm_lhm", "ve_to_vh", 4 * MIB), 0.10,
        note="SHM sustained rate; small-size burst exceeds this (see EXPERIMENTS.md)",
    ))

    # PCIe budget.
    add(CalibrationCheck(
        "pcie.max_achievable", PAPER.pcie_theoretical_peak * PAPER.pcie_achievable_fraction,
        timing.pcie_max_bandwidth, 0.02,
    ))
    add(CalibrationCheck(
        "pcie.round_trip", PAPER.pcie_round_trip, timing.pcie_read_rtt, 0.05,
    ))

    # Fig. 10 shapes: near-peak thresholds.
    udma_peak = _peak(timing, "udma", "vh_to_ve", 256 * MIB)
    udma_1mib = PAPER.udma_near_peak_size / transfer_time(
        timing, "udma", "vh_to_ve", PAPER.udma_near_peak_size
    )
    add(CalibrationCheck(
        "fig10.udma_near_peak_at_1MiB", 1.0,
        1.0 if udma_1mib >= PAPER.near_peak_fraction * udma_peak else 0.0, 0.0,
        note=f"1 MiB reaches {udma_1mib / udma_peak:.0%} of peak",
    ))
    veo_peak = _peak(timing, "veo", "vh_to_ve", 256 * MIB)
    veo_64mib = PAPER.veo_near_peak_size / transfer_time(
        timing, "veo", "vh_to_ve", PAPER.veo_near_peak_size
    )
    veo_1mib = PAPER.udma_near_peak_size / transfer_time(
        timing, "veo", "vh_to_ve", PAPER.udma_near_peak_size
    )
    add(CalibrationCheck(
        "fig10.veo_near_peak_at_64MiB_not_1MiB", 1.0,
        1.0
        if veo_64mib >= PAPER.near_peak_fraction * veo_peak
        and veo_1mib < PAPER.near_peak_fraction * veo_peak
        else 0.0,
        0.0,
        note=f"64 MiB: {veo_64mib / veo_peak:.0%}, 1 MiB: {veo_1mib / veo_peak:.0%} of peak",
    ))

    # Small/large user-DMA vs VEO ratios.
    lo, hi = PAPER.small_ratio_band
    for direction in ("vh_to_ve", "ve_to_vh"):
        small_ratio = transfer_time(timing, "veo", direction, 8) / transfer_time(
            timing, "udma", direction, 8
        )
        add(CalibrationCheck(
            f"fig10.small_ratio.{direction}", (lo + hi) / 2, small_ratio,
            (hi - lo) / (lo + hi),
            note="paper reports 24x/35x; our VEO latency is pinned by Fig. 9",
        ))
        large_ratio = transfer_time(timing, "veo", direction, 256 * MIB) / transfer_time(
            timing, "udma", direction, 256 * MIB
        )
        add(CalibrationCheck(
            f"fig10.large_ratio.{direction}", PAPER.large_ratio, large_ratio, 0.03,
        ))

    # LHM beats user DMA only for 1–2 words.
    for words, should_win in ((1, True), (2, True), (4, False)):
        lhm = transfer_time(timing, "shm_lhm", "vh_to_ve", words * WORD)
        dma = transfer_time(timing, "udma", "vh_to_ve", words * WORD)
        add(CalibrationCheck(
            f"fig10.lhm_vs_udma.{words}w", 1.0 if should_win else 0.0,
            1.0 if lhm < dma else 0.0, 0.0,
        ))

    # SHM beats user DMA up to 256 B, with the stated advantages.
    shm_1w = timing.shm_time(WORD)
    dma_1w = transfer_time(timing, "udma", "ve_to_vh", WORD)
    add(CalibrationCheck(
        "fig10.shm_single_word_advantage", PAPER.shm_single_word_advantage,
        1.0 - shm_1w / dma_1w, 0.10,
        note="VE-side issue time vs user-DMA transfer time",
    ))
    shm_256 = timing.shm_time(PAPER.shm_win_bytes)
    dma_256 = transfer_time(timing, "udma", "ve_to_vh", PAPER.shm_win_bytes)
    add(CalibrationCheck(
        "fig10.shm_256B_advantage", PAPER.shm_256b_advantage,
        1.0 - shm_256 / dma_256, 0.40,
    ))
    shm_512 = timing.shm_time(512)
    dma_512 = transfer_time(timing, "udma", "ve_to_vh", 512)
    add(CalibrationCheck(
        "fig10.shm_loses_at_512B", 0.0, 1.0 if shm_512 < dma_512 else 0.0, 0.0,
    ))

    # Direction asymmetry: VE→VH faster, peak gap ≤ 5 %.
    gap_udma = _peak(timing, "udma", "ve_to_vh", 256 * MIB) / _peak(
        timing, "udma", "vh_to_ve", 256 * MIB
    )
    add(CalibrationCheck(
        "fig10.direction_gap_udma", 1.047, gap_udma, 0.05,
        note="paper: up to 5 % between directions",
    ))

    # NUMA: one UPI hop on a small transfer adds well under 1 µs.
    extra = transfer_time(timing, "udma", "vh_to_ve", 8, upi_hops=1) - transfer_time(
        timing, "udma", "vh_to_ve", 8
    )
    add(CalibrationCheck(
        "numa.upi_hop_extra_per_transfer", timing.upi_penalty, extra, 0.01,
    ))

    return checks
