"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

The CLI's tables are for humans; CI and regression tooling want numbers
they can diff without scraping ASCII art. ``python -m repro.bench.cli
<experiment> --json-dir out/`` drops one ``BENCH_<experiment>.json``
next to the printed report, containing the raw measured data plus run
metadata (quick flag, Python version, platform, wall-clock timestamp).

:class:`~repro.bench.stats.Stats` values serialize with their full field
set — n, mean, min, max, std, **median and p95** — so trend dashboards
can track tail latency, not just averages.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path
from typing import Any

from repro.bench.stats import Stats

__all__ = ["SCHEMA_VERSION", "bench_payload", "write_bench_json"]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively convert measurement data into JSON-safe values."""
    if isinstance(value, Stats):
        return dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(val) for val in value]
    return value


def bench_payload(
    name: str,
    data: Any,
    *,
    quick: bool = False,
    timestamp: float | None = None,
) -> dict[str, Any]:
    """The ``BENCH_<name>.json`` payload for one experiment run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": name,
        "quick": bool(quick),
        "timestamp": time.time() if timestamp is None else timestamp,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "data": _jsonable(data),
    }


def write_bench_json(
    name: str,
    data: Any,
    out_dir: str | Path,
    *,
    quick: bool = False,
    timestamp: float | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` into ``out_dir``; return its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{name}.json"
    payload = bench_payload(name, data, quick=quick, timestamp=timestamp)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
