"""Command-line reproduction runner — ``python -m repro.bench.cli``.

Regenerates the paper's tables and figures without pytest::

    python -m repro.bench.cli fig9
    python -m repro.bench.cli fig10 --quick
    python -m repro.bench.cli all

Each experiment prints a paper-style report; ``all`` runs everything.
``--json-dir DIR`` additionally drops a machine-readable
``BENCH_<experiment>.json`` per experiment (see
:mod:`repro.bench.trajectory`). The same measurement code backs the
pytest benchmarks (see :mod:`repro.bench.experiments`).
"""

from __future__ import annotations

import argparse

from repro.bench import experiments as exp
from repro.bench.calibration import PAPER
from repro.bench.figures import ascii_chart, render_series
from repro.bench.tables import (
    format_bandwidth,
    format_size,
    format_time,
    render_table,
)
from repro.bench.trajectory import write_bench_json
from repro.hw.specs import GIB, MIB

__all__ = ["main"]

#: Every report function returns (human-readable text, raw JSON payload).
Report = tuple[str, dict]


def report_fig9(quick: bool) -> Report:
    stats = exp.measure_fig9(reps=15 if quick else 60, full=True)
    data = {name: s.mean for name, s in stats.items()}
    rows = [
        {"method": "VEO (native)", "measured": format_time(data["veo_native"]),
         "paper": format_time(PAPER.fig9_veo_native)},
        {"method": "HAM-Offload (VEO)", "measured": format_time(data["ham_veo"]),
         "paper": format_time(PAPER.fig9_ham_veo)},
        {"method": "HAM-Offload (DMA)", "measured": format_time(data["ham_dma"]),
         "paper": format_time(PAPER.fig9_ham_dma)},
    ]
    ratios = render_table(
        [
            {"ratio": "HAM-VEO / VEO",
             "measured": f"{data['ham_veo'] / data['veo_native']:.1f}x", "paper": "5.4x"},
            {"ratio": "VEO / HAM-DMA",
             "measured": f"{data['veo_native'] / data['ham_dma']:.1f}x", "paper": "13.1x"},
            {"ratio": "HAM-VEO / HAM-DMA",
             "measured": f"{data['ham_veo'] / data['ham_dma']:.1f}x", "paper": "70.8x"},
        ],
        title="Fig. 9 — speedup ratios",
    )
    text = render_table(rows, title="Fig. 9 — empty-kernel offload cost") + "\n\n" + ratios
    return text, {"stats": stats}


def report_fig10(quick: bool) -> Report:
    sizes = exp.fig10_sizes(16 * MIB if quick else exp.FIG10_MAX_SIZE)
    data = exp.measure_fig10(sizes, rep_base=3 if quick else 8)
    sections = []
    for direction, label in (("vh_to_ve", "VH => VE"), ("ve_to_vh", "VE => VH")):
        series = {
            name: [v / GIB for v in values] for name, values in data[direction].items()
        }
        sections.append(render_series(
            sizes, series, title=f"Fig. 10 ({label}) [GiB/s]"
        ))
        sections.append(ascii_chart(sizes, series, title=f"Fig. 10 ({label}) log-log"))
    return "\n\n".join(sections), {"sizes": sizes, "bandwidths": data}


def report_table4(quick: bool) -> Report:
    peaks = exp.measure_table4([64 * MIB] if quick else None)
    rows = [
        {"Transfer Method": "VEO Read/Write",
         "VH => VE": format_bandwidth(peaks["veo_write"]),
         "VE => VH": format_bandwidth(peaks["veo_read"]),
         "paper": "9.9 / 10.4 GiB/s"},
        {"Transfer Method": "VE User DMA",
         "VH => VE": format_bandwidth(peaks["udma_read"]),
         "VE => VH": format_bandwidth(peaks["udma_write"]),
         "paper": "10.6 / 11.1 GiB/s"},
        {"Transfer Method": "VE SHM/LHM",
         "VH => VE": format_bandwidth(peaks["lhm"]),
         "VE => VH": format_bandwidth(peaks["shm"]),
         "paper": "0.01 / 0.06 GiB/s"},
    ]
    return render_table(rows, title="Table IV — max PCIe bandwidths"), {"peaks": peaks}


def report_numa(quick: bool) -> Report:
    data = exp.measure_numa_penalty(reps=10 if quick else 40)
    rows = [
        {"protocol": name.upper(),
         "socket 0": format_time(data[f"{name}_socket0"]),
         "socket 1 (UPI)": format_time(data[f"{name}_socket1"]),
         "added": format_time(data[f"{name}_socket1"] - data[f"{name}_socket0"])}
        for name in ("dma", "veo")
    ]
    text = render_table(rows, title="Sec. V-A — second-socket offload cost")
    return text, {"costs": data}


def report_ablations(quick: bool) -> Report:
    a1 = exp.measure_dma_manager_ablation()
    a2 = exp.measure_hugepages_ablation()
    rows1 = [
        {"size": format_size(size), "classic": format_bandwidth(a1["classic"][size]),
         "4dma": format_bandwidth(a1["4dma"][size])}
        for size in sorted(a1["classic"])
    ]
    rows2 = [
        {"size": format_size(size), "huge pages": format_bandwidth(a2["huge"][size]),
         "4 KiB pages": format_bandwidth(a2["small"][size])}
        for size in sorted(a2["huge"])
    ]
    text = (
        render_table(rows1, title="A1 — DMA manager generations")
        + "\n\n"
        + render_table(rows2, title="A2 — page sizes")
    )
    return text, {"dma_manager": a1, "hugepages": a2}


def report_scaling(quick: bool) -> Report:
    m1 = exp.measure_multi_ve_scaling(rounds=4 if quick else 12)
    m2 = exp.measure_switch_contention(4 * MIB if quick else 16 * MIB)
    rows1 = [
        {"VEs": n, "offloads/s": f"{rate:,.0f}", "speedup": f"{rate / m1[1]:.2f}x"}
        for n, rate in sorted(m1.items())
    ]
    rows2 = [
        {"placement": key.replace("_", " "), "aggregate": format_bandwidth(value)}
        for key, value in m2.items()
    ]
    text = (
        render_table(rows1, title="M1 — multi-VE offload throughput")
        + "\n\n"
        + render_table(rows2, title="M2 — switch uplink contention")
    )
    return text, {"multi_ve": m1, "contention": m2}


def report_pipeline(quick: bool) -> Report:
    data = exp.measure_pipeline_throughput(
        invokes=16 if quick else 48,
        kernel_seconds=0.01 if quick else 0.02,
    )
    rows = [
        {"mode": "serial sync",
         "throughput": f"{data['serial_throughput']:,.0f} invokes/s",
         "wall time": format_time(data["serial_seconds"])},
        {"mode": f"pipelined (window {int(data['window'])}, "
                 f"{int(data['workers'])} workers)",
         "throughput": f"{data['pipelined_throughput']:,.0f} invokes/s",
         "wall time": format_time(data["pipelined_seconds"])},
        {"mode": "speedup", "throughput": f"{data['speedup']:.1f}x",
         "wall time": "-"},
    ]
    text = render_table(
        rows, title="P2 — pipelined TCP invoke throughput (wall clock)"
    )
    return text, {"pipeline": data}


def report_telemetry(quick: bool) -> Report:
    data = exp.measure_telemetry_overhead(invokes=40 if quick else 100)
    rows = [
        {"telemetry": label,
         "round trip": format_time(data[f"{mode}_mean_us"] / 1e6),
         "vs disabled": (
             f"{(data[f'overhead_{mode}'] - 1.0) * 100:+.1f}%"
             if f"overhead_{mode}" in data else "-"
         )}
        for mode, label in (
            ("flight_off", "disabled + flight recorder off"),
            ("disabled", "disabled"),
            ("rate_0", "sample_rate=0.0"),
            ("rate_0_01", "sample_rate=0.01"),
            ("rate_1", "sample_rate=1.0"),
        )
    ]
    rows.append({
        "telemetry": "flight recorder cost",
        "round trip": "-",
        "vs disabled": f"{(data['overhead_flight_on'] - 1.0) * 100:+.1f}%",
    })
    text = render_table(
        rows, title="T1 — telemetry sampling overhead (TCP round trip)"
    )
    return text, {"overhead": data}


def report_tsdb(quick: bool) -> Report:
    data = exp.measure_tsdb_overhead(invokes=40 if quick else 100)
    rows = [
        {"mode": label,
         "round trip": format_time(data[f"{mode}_mean_us"] / 1e6),
         "vs tsdb off": (
             f"{(data['overhead_tsdb_on'] - 1.0) * 100:+.1f}%"
             if mode == "tsdb_on" else "-"
         )}
        for mode, label in (
            ("tsdb_off", "telemetry, no sampler"),
            ("tsdb_on", "telemetry + tsdb sampler (1 s)"),
        )
    ]
    text = render_table(
        rows, title="T2 — TSDB sampler overhead (TCP round trip)"
    )
    return text, {"overhead": data}


def report_qos(quick: bool) -> Report:
    data = exp.measure_qos(
        premium_ops=30 if quick else 80,
        straggler_invokes=64 if quick else 160,
    )
    fairness_rows = [
        {"window": "FIFO",
         "premium p99": format_time(data["premium_p99_latency_fifo"]),
         "premium mean": format_time(data["premium_mean_latency_fifo"])},
        {"window": "weighted fair (QoS)",
         "premium p99": format_time(data["premium_p99_latency_qos"]),
         "premium mean": format_time(data["premium_mean_latency_qos"])},
        {"window": "premium p99 speedup",
         "premium p99": f"{data['qos_premium_speedup']:.1f}x",
         "premium mean": "-"},
    ]
    hedge_rows = [
        {"mode": "unhedged",
         "max latency": format_time(data["unhedged_max_latency"]),
         "p99": format_time(data["unhedged_p99_latency"])},
        {"mode": "hedged",
         "max latency": format_time(data["hedged_max_latency"]),
         "p99": format_time(data["hedged_p99_latency"])},
        {"mode": "tail speedup / duplicate rate",
         "max latency": f"{data['hedge_tail_speedup']:.1f}x",
         "p99": f"{data['hedge_duplicate_overhead'] * 100:.1f}%"},
    ]
    text = (
        render_table(
            fairness_rows,
            title="Q1a — premium tenant latency under best-effort flood",
        )
        + "\n\n"
        + render_table(
            hedge_rows,
            title="Q1b — hedged requests vs intermittent straggler",
        )
    )
    return text, {"qos": data}


def report_shm(quick: bool) -> Report:
    data = exp.measure_shm_latency(
        samples=120 if quick else 300,
        rounds=3 if quick else 4,
        burst_rounds=20 if quick else 40,
    )
    rtt_rows = [
        {"transport": "tcp (localhost)",
         "RTT median": f"{data['tcp_rtt_time_us']:.1f} us",
         "RTT p95": f"{data['tcp_rtt_p95_time_us']:.1f} us"},
        {"transport": "shm (SPSC rings)",
         "RTT median": f"{data['shm_rtt_time_us']:.1f} us",
         "RTT p95": f"{data['shm_rtt_p95_time_us']:.1f} us"},
        {"transport": "speedup",
         "RTT median": f"{data['transport_rtt_speedup']:.1f}x",
         "RTT p95": "-"},
    ]
    burst_rows = [
        {"transport": "tcp (localhost)",
         "messages/s": f"{data['tcp_throughput']:,.0f}"},
        {"transport": "shm (SPSC rings)",
         "messages/s": f"{data['shm_throughput']:,.0f}"},
        {"transport": "speedup",
         "messages/s": f"{data['transport_throughput_speedup']:.1f}x"},
    ]
    text = (
        render_table(
            rtt_rows,
            title="S1a — small-message RTT, shm vs TCP (sync ping)",
        )
        + "\n\n"
        + render_table(
            burst_rows,
            title=(
                "S1b — pipelined message throughput "
                f"(depth {int(data['burst_depth'])} ping bursts)"
            ),
        )
    )
    return text, {"shm": data}


def report_saturation(quick: bool) -> Report:
    depths = (64, 256, 1024) if quick else (64, 256, 1024, 4096, 10_000)
    data = exp.measure_saturation(depths=depths)
    rows = []
    for depth in depths:
        tcp = data["tcp"][f"depth_{depth}"]
        shm = data["shm"][f"depth_{depth}"]
        rows.append({
            "depth": f"{depth:,}",
            "tcp unbatched": f"{tcp['unbatched_rate']:,.0f}/s",
            "tcp batched": f"{tcp['batched_rate']:,.0f}/s",
            "batch speedup": f"{tcp['batch_speedup']:.2f}x",
            "shm": f"{shm['rate']:,.0f}/s",
        })
    text = render_table(
        rows,
        title="S2 — pipelined empty-kernel invoke rate vs in-flight depth",
    )
    return text, {"saturation": data}


EXPERIMENTS: dict[str, callable] = {
    "fig9": report_fig9,
    "fig10": report_fig10,
    "table4": report_table4,
    "numa": report_numa,
    "ablations": report_ablations,
    "scaling": report_scaling,
    "pipeline": report_pipeline,
    "telemetry": report_telemetry,
    "tsdb": report_tsdb,
    "qos": report_qos,
    "shm": report_shm,
    "saturation": report_saturation,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the paper's tables and figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sweeps / fewer repetitions (same shapes, faster)",
    )
    parser.add_argument(
        "--json-dir", metavar="DIR", default=None,
        help="also write machine-readable BENCH_<experiment>.json files here",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        text, payload = EXPERIMENTS[name](args.quick)
        print(text)
        print()
        if args.json_dir is not None:
            path = write_bench_json(name, payload, args.json_dir, quick=args.quick)
            print(f"wrote {path}")
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
