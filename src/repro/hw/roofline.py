"""Roofline execution-time model for offloaded kernels.

The paper offloads *empty* kernels to isolate framework overhead, but its
motivation (Sec. V-A last paragraph) is that lower offload cost lets
finer-grained kernels profit — in the Xeon Phi study a 13.7× overhead
reduction translated into up to 2.6× application speedup. To reproduce
that *granularity* experiment (bench G1) we need kernel runtimes on both
devices, which this classic roofline model provides:

``time = startup + max(flops / peak_flops_eff, bytes / mem_bandwidth)``

with a device-specific *efficiency* factor standing in for how well the
code vectorises (the paper: scalar code runs "rather slow" on the VE).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceModel", "KernelCost", "VH_DEVICE", "VE_DEVICE", "VE_SCALAR_DEVICE"]

from repro.hw.specs import VE_TYPE_10B, VH_XEON_GOLD_6126


@dataclass(frozen=True)
class KernelCost:
    """Abstract cost of one kernel invocation.

    Attributes
    ----------
    flops:
        Floating-point operations performed.
    bytes_moved:
        Bytes read + written from/to device memory.
    """

    flops: float
    bytes_moved: float

    def scaled(self, factor: float) -> "KernelCost":
        """Cost of the same kernel on a ``factor``× larger problem."""
        return KernelCost(self.flops * factor, self.bytes_moved * factor)


@dataclass(frozen=True)
class DeviceModel:
    """Roofline parameters of one execution device.

    Attributes
    ----------
    name:
        Label for reports.
    peak_flops:
        Peak double-precision FLOP/s.
    mem_bandwidth:
        Memory bandwidth in bytes/s.
    efficiency:
        Fraction of peak the workload's code achieves (vectorisation /
        pipeline quality).
    startup:
        Fixed per-invocation cost (loop setup, cache warm).
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    efficiency: float = 0.8
    startup: float = 0.0

    def kernel_time(self, cost: KernelCost) -> float:
        """Roofline execution time of ``cost`` on this device."""
        if cost.flops < 0 or cost.bytes_moved < 0:
            raise ValueError("kernel cost components must be non-negative")
        compute = cost.flops / (self.peak_flops * self.efficiency)
        memory = cost.bytes_moved / self.mem_bandwidth
        return self.startup + max(compute, memory)

    def arithmetic_balance(self) -> float:
        """FLOP/byte at which the device turns compute-bound."""
        return self.peak_flops * self.efficiency / self.mem_bandwidth


#: The Vector Host CPU running well-optimised (AVX-512) code.
VH_DEVICE = DeviceModel(
    name="VH (Xeon Gold 6126)",
    peak_flops=VH_XEON_GOLD_6126.peak_flops,
    mem_bandwidth=VH_XEON_GOLD_6126.memory_bandwidth_bytes_s,
    efficiency=0.75,
    startup=0.2e-6,
)

#: The Vector Engine running well-vectorised code.
VE_DEVICE = DeviceModel(
    name="VE (Type 10B, vectorised)",
    peak_flops=VE_TYPE_10B.peak_flops,
    mem_bandwidth=VE_TYPE_10B.memory_bandwidth_bytes_s,
    efficiency=0.8,
    startup=0.5e-6,
)

#: The Vector Engine running *scalar* code — the paper stresses that
#: non-data-parallel code executes in "a rather slow scalar execution
#: mode" on the VE, which motivates offloading instead of native runs.
VE_SCALAR_DEVICE = DeviceModel(
    name="VE (Type 10B, scalar)",
    peak_flops=VE_TYPE_10B.peak_flops / VE_TYPE_10B.vector_width_double,
    mem_bandwidth=VE_TYPE_10B.memory_bandwidth_bytes_s / 8,
    efficiency=0.5,
    startup=0.5e-6,
)
