"""PCIe link model.

The link is modeled as a shared, FIFO-arbitrated resource: only one bulk
transfer occupies the wire at a time (the paper's system has a single PCIe
Gen3 x16 connection per VE; both the privileged and the user DMA engine
ultimately share it). Transfer *durations* are computed by the
:class:`~repro.hw.params.TimingModel`; the link adds arbitration and
accounting.

Word-granular LHM/SHM accesses bypass arbitration (they are independent
bus transactions interleaving freely with DMA bursts) but are still
counted.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.sim import Event, Resource, Simulator

__all__ = ["PcieLink"]


class PcieLink:
    """One PCIe connection between the VH and a VE.

    Parameters
    ----------
    sim:
        The simulator the link lives in.
    name:
        Label used in traces.
    upi_hops:
        UPI crossings between the issuing CPU socket and this link's PCIe
        switch (0 when the VH process runs on the locally attached socket,
        1 from the remote socket — paper Sec. V-A).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "pcie",
        upi_hops: int = 0,
        uplink: Resource | None = None,
    ) -> None:
        if upi_hops < 0:
            raise ValueError(f"upi_hops must be >= 0, got {upi_hops}")
        self.sim = sim
        self.name = name
        self.upi_hops = upi_hops
        self._wire = Resource(sim, capacity=1)
        #: Shared PCIe-switch uplink (paper Fig. 3: one x16 uplink feeds
        #: four VE slots). Bulk transfers of same-switch VEs contend here.
        self.uplink = uplink
        self.bytes_vh_to_ve = 0
        self.bytes_ve_to_vh = 0
        self.transfer_count = 0
        self.word_op_count = 0
        self.busy_time = 0.0

    def transfer(
        self, duration: float, size: int, direction: str
    ) -> Generator[Event, Any, None]:
        """Occupy the wire for ``duration`` moving ``size`` bytes.

        Use as ``yield from link.transfer(...)`` inside a simulation
        process. Arbitration is FIFO: concurrent bulk transfers serialize.
        """
        if duration < 0:
            raise ValueError(f"negative transfer duration {duration}")
        yield self._wire.request()
        try:
            if self.uplink is not None:
                yield self.uplink.request()
            try:
                start = self.sim.now
                yield self.sim.timeout(duration)
                self.busy_time += self.sim.now - start
                self._account(size, direction)
                self.transfer_count += 1
            finally:
                if self.uplink is not None:
                    self.uplink.release()
        finally:
            self._wire.release()

    def word_op(self, direction: str, size: int = 8) -> None:
        """Account one LHM/SHM word transaction (no arbitration)."""
        self._account(size, direction)
        self.word_op_count += 1

    def _account(self, size: int, direction: str) -> None:
        if direction == "vh_to_ve":
            self.bytes_vh_to_ve += size
        elif direction == "ve_to_vh":
            self.bytes_ve_to_vh += size
        else:
            raise ValueError(f"unknown direction {direction!r}")

    @property
    def queue_length(self) -> int:
        """Transfers currently waiting for the wire."""
        return self._wire.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PcieLink {self.name!r} upi_hops={self.upi_hops} "
            f"{self.transfer_count} transfers, "
            f"{self.bytes_vh_to_ve}B down / {self.bytes_ve_to_vh}B up>"
        )
