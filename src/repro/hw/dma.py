"""DMA machinery: the DMAATB and the VE user DMA engine.

The paper's fast protocol (Sec. IV) rests on three hardware facilities of
the Vector Engine, all modeled here or in :mod:`repro.hw.vector_engine`:

* the **DMAATB** (DMA Address Translation Buffer): since the VE has no
  IOMMU, any VH (or remote-VE) memory must be *registered* before VE code
  can touch it; registration yields a **VEHVA** (VE Host Virtual Address);
* the **user DMA engine** (one per VE core): block transfers between
  registered local memory and VEHVA ranges, initiated by VE code with no
  OS interaction — hence its low latency;
* the **LHM/SHM instructions** (in :class:`~repro.hw.vector_engine.VectorEngine`):
  word-wise loads/stores to VEHVA ranges.

The privileged (system) DMA used by VEO lives in
:mod:`repro.veos.dma_manager` because it is driven by the VEOS daemon.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.errors import DmaatbError, DmaError
from repro.hw.memory import MemoryRegion
from repro.hw.params import TimingModel
from repro.hw.pcie import PcieLink
from repro.sim import Event, Resource, Simulator

__all__ = ["Dmaatb", "DmaatbEntry", "UserDmaEngine", "VEHVA_BASE"]

#: Base of the VEHVA address space (arbitrary; makes handles recognisable).
VEHVA_BASE = 0x6000_0000_0000


@dataclass(frozen=True)
class DmaatbEntry:
    """One DMAATB registration.

    Attributes
    ----------
    vehva:
        Base address in the VE Host Virtual Address space.
    region:
        The memory the registration points into.
    addr:
        Offset of the registered range within ``region``.
    size:
        Length of the registered range.
    """

    vehva: int
    region: MemoryRegion
    addr: int
    size: int

    @property
    def end(self) -> int:
        """One past the last VEHVA covered."""
        return self.vehva + self.size


class Dmaatb:
    """The VE's DMA Address Translation Buffer.

    A fixed number of entries map VEHVA ranges onto memory regions.
    Registration is the *slow, setup-time* operation (performed once by
    the DMA protocol's initialisation); translation at transfer time is
    free — that asymmetry is the heart of the paper's Sec. IV protocol.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, DmaatbEntry] = {}
        self._next_vehva = VEHVA_BASE

    @property
    def used_entries(self) -> int:
        """Number of live registrations."""
        return len(self._entries)

    def register(self, region: MemoryRegion, addr: int, size: int) -> DmaatbEntry:
        """Register ``[addr, addr+size)`` of ``region``; returns the entry.

        Raises
        ------
        DmaatbError
            If the table is full or the range is invalid.
        """
        if size <= 0:
            raise DmaatbError(f"registration size must be positive, got {size}")
        if addr < 0 or addr + size > region.size:
            raise DmaatbError(
                f"range [{addr:#x}, {addr + size:#x}) outside region {region.name!r}"
            )
        if len(self._entries) >= self.capacity:
            raise DmaatbError(f"DMAATB full ({self.capacity} entries)")
        entry = DmaatbEntry(vehva=self._next_vehva, region=region, addr=addr, size=size)
        # Keep VEHVA ranges disjoint by advancing past this allocation
        # (rounded up to 4 KiB like the real translation granularity).
        self._next_vehva += -(-size // 4096) * 4096
        self._entries[entry.vehva] = entry
        return entry

    def unregister(self, entry: DmaatbEntry) -> None:
        """Remove a registration."""
        if self._entries.pop(entry.vehva, None) is None:
            raise DmaatbError(f"no registration at VEHVA {entry.vehva:#x}")

    def translate(self, vehva: int, size: int) -> tuple[MemoryRegion, int]:
        """Resolve a VEHVA range to ``(region, addr)``.

        Raises
        ------
        DmaatbError
            If the range is not covered by a single registration.
        """
        for entry in self._entries.values():
            if entry.vehva <= vehva and vehva + size <= entry.end:
                return entry.region, entry.addr + (vehva - entry.vehva)
        raise DmaatbError(
            f"VEHVA range [{vehva:#x}, {vehva + size:#x}) not registered"
        )


class UserDmaEngine:
    """The per-core user DMA engine of the Vector Engine (Sec. IV-A).

    Transfers are initiated by VE code between *registered* local memory
    and VEHVA ranges. No address translation or OS interaction happens at
    transfer time, which is why its latency (~2.5 µs) is two orders of
    magnitude below a VEO read/write.
    """

    def __init__(
        self,
        sim: Simulator,
        timing: TimingModel,
        dmaatb: Dmaatb,
        link: PcieLink,
        name: str = "udma",
    ) -> None:
        self.sim = sim
        self.timing = timing
        self.dmaatb = dmaatb
        self.link = link
        self.name = name
        self._engine = Resource(sim, capacity=1)
        self.transfer_count = 0

    def read_host(
        self, src_vehva: int, dst_region: MemoryRegion, dst_addr: int, size: int
    ) -> Generator[Event, Any, None]:
        """DMA ``size`` bytes from a VEHVA range into local VE memory.

        Direction VH→VE ("DMA read" in paper terms). Generator — use with
        ``yield from``.
        """
        src_region, src_addr = self.dmaatb.translate(src_vehva, size)
        setup, wire = self.timing.udma_transfer_parts(
            size, direction="vh_to_ve", upi_hops=self.link.upi_hops
        )
        yield self._engine.request()
        try:
            yield self.sim.timeout(setup)
            yield from self.link.transfer(wire, size, "vh_to_ve")
            dst_region.write(dst_addr, src_region.read(src_addr, size))
            self.transfer_count += 1
        finally:
            self._engine.release()

    def write_host(
        self, src_region: MemoryRegion, src_addr: int, dst_vehva: int, size: int
    ) -> Generator[Event, Any, None]:
        """DMA ``size`` bytes from local VE memory into a VEHVA range.

        Direction VE→VH ("DMA write").
        """
        dst_region, dst_addr = self.dmaatb.translate(dst_vehva, size)
        setup, wire = self.timing.udma_transfer_parts(
            size, direction="ve_to_vh", upi_hops=self.link.upi_hops
        )
        yield self._engine.request()
        try:
            yield self.sim.timeout(setup)
            yield from self.link.transfer(wire, size, "ve_to_vh")
            dst_region.write(dst_addr, src_region.read(src_addr, size))
            self.transfer_count += 1
        finally:
            self._engine.release()

    def validate_local(self, region: MemoryRegion, addr: int, size: int) -> None:
        """Check a local buffer range is inside the region.

        The real engine also requires local memory to be DMA-registered;
        we model that as a range check plus the DMAATB registration done
        during protocol setup.
        """
        if addr < 0 or addr + size > region.size:
            raise DmaError(
                f"{self.name}: local range [{addr:#x}, {addr + size:#x}) "
                f"outside {region.name!r}"
            )
