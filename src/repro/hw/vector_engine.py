"""Model of one NEC Vector Engine card.

Exposes exactly the facilities the paper's protocols use:

* the local HBM2 memory (a real byte buffer with an allocator);
* the DMAATB and a user DMA engine (:mod:`repro.hw.dma`);
* the **LHM**/**SHM** instructions — word-wise loads/stores of host
  memory through VEHVA mappings (Sec. IV-A).

The VE runs no OS: process management, syscalls and the privileged DMA
all live host-side in :mod:`repro.veos`.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.errors import DmaError
from repro.hw.dma import Dmaatb, UserDmaEngine
from repro.hw.memory import MemoryRegion, PAGE_HUGE_2M
from repro.hw.params import TimingModel, WORD
from repro.hw.pcie import PcieLink
from repro.hw.specs import MIB, VE_TYPE_10B, VeSpec
from repro.sim import Event, Simulator

__all__ = ["VectorEngine"]


class VectorEngine:
    """One Vector Engine: HBM2 memory, DMAATB, user DMA, LHM/SHM.

    Parameters
    ----------
    sim:
        Owning simulator.
    index:
        Card index in the system (0..7 on the A300-8).
    timing:
        The platform timing model.
    link:
        The PCIe link connecting this VE to the VH.
    spec:
        Hardware specification (defaults to the VE Type 10B).
    memory_bytes:
        *Simulated* HBM2 capacity. Defaults to 512 MiB — enough for the
        paper's largest transfers — rather than the spec'd 48 GiB, to keep
        host RAM usage reasonable; the spec value is still reported by
        :mod:`repro.hw.specs`.
    """

    def __init__(
        self,
        sim: Simulator,
        index: int,
        timing: TimingModel,
        link: PcieLink,
        *,
        spec: VeSpec = VE_TYPE_10B,
        memory_bytes: int = 512 * MIB,
    ) -> None:
        self.sim = sim
        self.index = index
        self.timing = timing
        self.link = link
        self.spec = spec
        self.hbm = MemoryRegion(
            f"ve{index}.hbm2", memory_bytes, default_page_size=PAGE_HUGE_2M
        )
        self.dmaatb = Dmaatb()
        self.udma = UserDmaEngine(sim, timing, self.dmaatb, link, name=f"ve{index}.udma")
        self.lhm_ops = 0
        self.shm_ops = 0

    # -- LHM: load host memory ------------------------------------------------
    def lhm_read(self, vehva: int, size: int) -> Generator[Event, Any, bytes]:
        """Load ``size`` bytes from a VEHVA range word-by-word.

        Each word is a blocking PCIe read (~the 1.2 µs round trip), which
        is why LHM only beats user DMA for one or two words (Sec. V-B).
        Generator — returns the bytes via ``yield from``.
        """
        region, addr = self.dmaatb.translate(vehva, size)
        duration = self.timing.lhm_time(size, upi_hops=self.link.upi_hops)
        yield self.sim.timeout(duration)
        words = max(1, -(-size // WORD))
        self.lhm_ops += words
        self.link.word_op("vh_to_ve", size)
        return region.read(addr, size)

    def lhm_read_u64(self, vehva: int) -> Generator[Event, Any, int]:
        """Load one 64-bit word from a VEHVA address (flag polling)."""
        region, addr = self.dmaatb.translate(vehva, WORD)
        yield self.sim.timeout(
            self.timing.lhm_time(WORD, upi_hops=self.link.upi_hops)
        )
        self.lhm_ops += 1
        self.link.word_op("vh_to_ve", WORD)
        return region.read_u64(addr)

    # -- SHM: store host memory --------------------------------------------------
    def shm_write(self, vehva: int, data: bytes) -> Generator[Event, Any, None]:
        """Store ``data`` to a VEHVA range word-by-word (posted).

        The generator completes when the VE core has *issued* all stores
        (store-queue model: fast burst, then sustained rate). The data
        becomes visible in host memory one PCIe one-way latency later.
        """
        size = len(data)
        if size == 0:
            raise DmaError("SHM store of zero bytes")
        region, addr = self.dmaatb.translate(vehva, size)
        busy = self.timing.shm_time(size)
        visibility = self.timing.shm_visibility_delay(upi_hops=self.link.upi_hops)
        yield self.sim.timeout(busy)
        self.shm_ops += max(1, -(-size // WORD))
        self.link.word_op("ve_to_vh", size)

        def land(_ev: Event) -> None:
            region.write(addr, data)

        self.sim.timeout(visibility).callbacks.append(land)  # type: ignore[union-attr]

    def shm_write_u64(self, vehva: int, value: int) -> Generator[Event, Any, None]:
        """Store one 64-bit word to a VEHVA address (flag signalling)."""
        yield from self.shm_write(vehva, value.to_bytes(WORD, "little"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VectorEngine #{self.index} {self.spec.name}>"
