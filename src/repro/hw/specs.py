"""Specification database for the benchmark platform.

Encodes paper **Table I** (single VH CPU and VE specifications) and
**Table III** (benchmark system configuration) as frozen dataclasses. The
benchmark targets ``bench_table1_specs`` / ``bench_table3_system``
regenerate the paper's tables from these objects, and the timing model and
roofline use them as ground truth.

Units follow the paper: ``GiB`` is 2**30 bytes, ``GB`` is 10**9 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GIB",
    "MIB",
    "KIB",
    "CpuSpec",
    "VeSpec",
    "SystemSpec",
    "VH_XEON_GOLD_6126",
    "VE_TYPE_10B",
    "A300_8",
]

KIB = 2**10
MIB = 2**20
GIB = 2**30


@dataclass(frozen=True)
class CpuSpec:
    """Specification of one Vector Host CPU socket (paper Table I, left)."""

    name: str
    cores: int
    threads: int
    vector_width_double: int
    clock_ghz: float
    peak_gflops: float
    max_memory_bytes: int
    memory_bandwidth_gb_s: float  #: GB/s (10**9 bytes per second)
    llc_bytes: int
    tdp_watts: int

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s."""
        return self.peak_gflops * 1e9

    @property
    def memory_bandwidth_bytes_s(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gb_s * 1e9


@dataclass(frozen=True)
class VeSpec:
    """Specification of one NEC Vector Engine (paper Table I, right)."""

    name: str
    cores: int
    threads: int
    vector_width_double: int
    clock_ghz: float
    peak_gflops: float
    max_memory_bytes: int
    memory_bandwidth_gb_s: float
    llc_bytes: int
    tdp_watts: int
    #: Number of 64-bit words in one vector register (ISA property).
    vector_length_words: int = 256
    #: Vector registers per core.
    vector_registers: int = 64
    #: FMA vector units per core.
    fma_units: int = 3
    #: Maximum PCIe payload size in bytes (Sec. V: 256 B for the VE).
    pcie_max_payload: int = 256

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s."""
        return self.peak_gflops * 1e9

    @property
    def memory_bandwidth_bytes_s(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gb_s * 1e9


@dataclass(frozen=True)
class SystemSpec:
    """Configuration of the benchmark system (paper Table III + Fig. 3)."""

    name: str
    cpu: CpuSpec
    ve: VeSpec
    num_cpu_sockets: int
    num_ves: int
    vh_memory_bytes: int
    #: VEs per PCIe switch (Fig. 3: two switches with four VEs each).
    ves_per_switch: int
    vh_os: str = "CentOS Linux release 7.6.1810, kernel 3.10.0-693"
    vh_compiler: str = "GCC 4.8.5"
    veos_version: str = "1.3.2-4dma"
    veo_version: str = "1.3.2a"
    ve_compiler: str = "NEC NCC 1.6.0"
    #: PCIe generation and lane count of the VE cards.
    pcie_gen: int = 3
    pcie_lanes: int = 16

    def socket_of_ve(self, ve_index: int) -> int:
        """CPU socket a VE is locally attached to (via its PCIe switch).

        In the A300-8 block diagram each PCIe switch hangs off one CPU
        socket; VEs 0..3 are local to socket 0, VEs 4..7 to socket 1.
        """
        if not 0 <= ve_index < self.num_ves:
            raise ValueError(f"VE index {ve_index} out of range 0..{self.num_ves - 1}")
        return min(ve_index // self.ves_per_switch, self.num_cpu_sockets - 1)


#: Intel Xeon Gold 6126 — the Vector Host CPU (paper Table I).
VH_XEON_GOLD_6126 = CpuSpec(
    name="Intel Xeon Gold 6126",
    cores=12,
    threads=24,
    vector_width_double=8,
    clock_ghz=2.6,
    peak_gflops=998.4,
    max_memory_bytes=384 * GIB,
    memory_bandwidth_gb_s=128.0,
    llc_bytes=int(19.25 * MIB),
    tdp_watts=125,
)

#: NEC Vector Engine Type 10B (paper Table I).
VE_TYPE_10B = VeSpec(
    name="NEC VE Type 10B",
    cores=8,
    threads=8,
    vector_width_double=256,
    clock_ghz=1.4,
    peak_gflops=2150.4,
    max_memory_bytes=48 * GIB,
    memory_bandwidth_gb_s=1228.8,
    llc_bytes=16 * MIB,
    tdp_watts=300,
)

#: The NEC SX-Aurora TSUBASA A300-8 benchmark system (paper Table III).
A300_8 = SystemSpec(
    name="NEC SX-Aurora TSUBASA A300-8",
    cpu=VH_XEON_GOLD_6126,
    ve=VE_TYPE_10B,
    num_cpu_sockets=2,
    num_ves=8,
    vh_memory_bytes=192 * GIB,
    ves_per_switch=4,
)
