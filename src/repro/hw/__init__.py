"""Hardware models of the NEC SX-Aurora TSUBASA A300-8 platform.

This subpackage provides the *substrate* the reproduced paper's protocols
run on. Since the physical machine is unavailable, every protocol-visible
hardware property is modeled:

``specs``
    The specification database (paper Tables I and III).
``params``
    The calibrated :class:`TimingModel` — every latency/bandwidth constant
    used by the simulation, with provenance notes tying it to paper anchors.
``memory``
    Byte-addressable simulated memories backed by real numpy buffers, with
    a first-fit allocator and page-granularity bookkeeping (4 KiB vs 2 MiB
    huge pages).
``pcie``
    The PCIe Gen3 x16 link model.
``dma``
    DMA engines: the VE user DMA and the VEOS-controlled privileged DMA.
``vector_engine`` / ``vector_host``
    Device models exposing exactly the primitives the paper's protocols
    compose: DMAATB registration, VEHVA mappings, LHM/SHM instructions,
    SysV shared-memory segments, NUMA sockets.
``topology``
    The A300-8 block diagram (paper Fig. 3) as a graph, used to derive
    per-path latency penalties (UPI hop from the second socket).
``roofline``
    A roofline execution-time model for offloaded kernels.
"""

from repro.hw.memory import Allocation, MemoryRegion, PAGE_4K, PAGE_HUGE_2M
from repro.hw.params import TimingModel, DEFAULT_TIMING
from repro.hw.pcie import PcieLink
from repro.hw.specs import (
    A300_8,
    CpuSpec,
    SystemSpec,
    VeSpec,
    VH_XEON_GOLD_6126,
    VE_TYPE_10B,
)
from repro.hw.topology import SystemTopology
from repro.hw.vector_engine import VectorEngine
from repro.hw.vector_host import VectorHost

__all__ = [
    "A300_8",
    "Allocation",
    "CpuSpec",
    "DEFAULT_TIMING",
    "MemoryRegion",
    "PAGE_4K",
    "PAGE_HUGE_2M",
    "PcieLink",
    "SystemSpec",
    "SystemTopology",
    "TimingModel",
    "VE_TYPE_10B",
    "VH_XEON_GOLD_6126",
    "VeSpec",
    "VectorEngine",
    "VectorHost",
]
