"""Model of the Vector Host (the x86 server the VE cards plug into).

The VH contributes three things to the paper's protocols:

* ordinary process memory (DDR4) where VEO stages transfers;
* **SystemV shared-memory segments** — the DMA protocol (Sec. IV-A) maps
  one into the VH process and registers it in the VE's DMAATB so that the
  VE can access it with user DMA and LHM/SHM;
* the NUMA layout: a VH process may run on the socket the VE's PCIe
  switch is attached to, or on the other socket behind a UPI hop
  (Sec. V-A measures the difference).
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.memory import MemoryRegion, PAGE_4K, PAGE_HUGE_2M
from repro.hw.params import TimingModel
from repro.hw.specs import MIB, VH_XEON_GOLD_6126, CpuSpec
from repro.sim import Simulator

__all__ = ["VectorHost", "ShmSegment"]


class ShmSegment(MemoryRegion):
    """A SystemV shared-memory segment of the VH.

    It is a plain :class:`MemoryRegion` plus the SysV ``key`` used by the
    VE side to attach it (paper Fig. 7), and a flag recording whether it
    is backed by huge pages (``SHM_HUGETLB``), which the paper found
    essential for peak bandwidth.
    """

    def __init__(self, key: int, size: int, *, huge_pages: bool = True) -> None:
        super().__init__(
            f"vh.shm[{key:#x}]",
            size,
            default_page_size=PAGE_HUGE_2M if huge_pages else PAGE_4K,
        )
        self.key = key
        self.huge_pages = huge_pages


class VectorHost:
    """The Vector Host: CPU sockets, DDR4 memory, SysV shm segments.

    Parameters
    ----------
    sim:
        Owning simulator.
    timing:
        The platform timing model.
    spec:
        CPU specification (defaults to the Xeon Gold 6126 of Table I).
    num_sockets:
        Number of CPU sockets (2 on the A300-8).
    memory_bytes:
        *Simulated* DDR4 capacity (default 512 MiB; the spec'd 192 GiB is
        reported by :mod:`repro.hw.specs`).
    """

    def __init__(
        self,
        sim: Simulator,
        timing: TimingModel,
        *,
        spec: CpuSpec = VH_XEON_GOLD_6126,
        num_sockets: int = 2,
        memory_bytes: int = 512 * MIB,
    ) -> None:
        if num_sockets < 1:
            raise ValueError(f"num_sockets must be >= 1, got {num_sockets}")
        self.sim = sim
        self.timing = timing
        self.spec = spec
        self.num_sockets = num_sockets
        self.ddr = MemoryRegion("vh.ddr4", memory_bytes, default_page_size=PAGE_HUGE_2M)
        self._segments: dict[int, ShmSegment] = {}
        self._next_key = 0x5EC0_0000

    # -- SysV shared memory -----------------------------------------------------
    def shmget(self, size: int, *, huge_pages: bool = True) -> ShmSegment:
        """Create a shared-memory segment (``shmget`` + ``shmat``).

        The returned segment is immediately usable by the VH process; the
        VE side attaches via :meth:`segment_by_key` and registers it in
        its DMAATB.
        """
        if size <= 0:
            raise HardwareError(f"shm segment size must be positive, got {size}")
        key = self._next_key
        self._next_key += 1
        segment = ShmSegment(key, size, huge_pages=huge_pages)
        self._segments[key] = segment
        return segment

    def segment_by_key(self, key: int) -> ShmSegment:
        """Look up a segment by its SysV key (the VE-side ``shmget``)."""
        try:
            return self._segments[key]
        except KeyError:
            raise HardwareError(f"no shared-memory segment with key {key:#x}") from None

    def shmrm(self, segment: ShmSegment) -> None:
        """Remove a segment (``shmctl(IPC_RMID)``)."""
        if self._segments.pop(segment.key, None) is None:
            raise HardwareError(f"segment {segment.key:#x} not live")

    @property
    def live_segments(self) -> int:
        """Number of live shared-memory segments."""
        return len(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VectorHost {self.spec.name} x{self.num_sockets}>"
