"""System topology — paper Fig. 3 as a graph.

The A300-8 block diagram: two Xeon sockets joined by UPI; each socket
feeds one PCIe switch; each switch connects four Vector Engines. The
topology answers one question the evaluation cares about (Sec. V-A):
*how many UPI hops lie between the CPU socket a process runs on and a
given VE?* — offloading from the second socket "adds up to 1 µs".

Built on :mod:`networkx` so it can be queried, extended (e.g. with the
optional InfiniBand cards) and visualised.
"""

from __future__ import annotations

import networkx as nx

from repro.hw.specs import A300_8, SystemSpec

__all__ = ["SystemTopology"]


class SystemTopology:
    """Graph model of the host/VE interconnect.

    Node names: ``socket0``, ``socket1``, ``pcie_switch0``, ...,
    ``ve0`` ... ``ve7``. Edge attribute ``kind`` is ``"upi"`` or
    ``"pcie"``.
    """

    def __init__(self, spec: SystemSpec = A300_8) -> None:
        self.spec = spec
        graph = nx.Graph()
        for socket in range(spec.num_cpu_sockets):
            graph.add_node(f"socket{socket}", kind="cpu")
        for a in range(spec.num_cpu_sockets):
            for b in range(a + 1, spec.num_cpu_sockets):
                graph.add_edge(f"socket{a}", f"socket{b}", kind="upi")
        num_switches = max(1, spec.num_ves // spec.ves_per_switch)
        for switch in range(num_switches):
            socket = min(switch, spec.num_cpu_sockets - 1)
            graph.add_node(f"pcie_switch{switch}", kind="switch")
            graph.add_edge(f"socket{socket}", f"pcie_switch{switch}", kind="pcie")
        for ve in range(spec.num_ves):
            switch = min(ve // spec.ves_per_switch, num_switches - 1)
            graph.add_node(f"ve{ve}", kind="ve")
            graph.add_edge(f"pcie_switch{switch}", f"ve{ve}", kind="pcie")
        self.graph = graph

    def upi_hops(self, socket: int, ve_index: int) -> int:
        """UPI crossings between ``socket`` and ``ve_index``.

        0 when the VE hangs off the given socket's PCIe switch, 1 when the
        path crosses the socket interconnect.
        """
        path = nx.shortest_path(self.graph, f"socket{socket}", f"ve{ve_index}")
        hops = 0
        for a, b in zip(path, path[1:]):
            if self.graph.edges[a, b]["kind"] == "upi":
                hops += 1
        return hops

    def local_socket(self, ve_index: int) -> int:
        """The socket with a UPI-free path to ``ve_index``."""
        return self.spec.socket_of_ve(ve_index)

    def ves_of_socket(self, socket: int) -> list[int]:
        """Indices of VEs locally attached to ``socket``."""
        return [
            ve for ve in range(self.spec.num_ves) if self.local_socket(ve) == socket
        ]

    def describe(self) -> str:
        """One-line-per-node description (used by example scripts)."""
        lines = []
        for socket in range(self.spec.num_cpu_sockets):
            ves = ", ".join(f"ve{i}" for i in self.ves_of_socket(socket))
            lines.append(f"socket{socket} ({self.spec.cpu.name}): {ves}")
        return "\n".join(lines)
