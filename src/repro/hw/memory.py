"""Simulated byte-addressable memories.

A :class:`MemoryRegion` models one physical memory (the VE's HBM2, the
VH's DDR4, or a SysV shared segment) as a real ``numpy`` byte buffer plus
an allocator. Data written through the simulated protocols really lands in
these buffers and is really read back — the functional correctness of the
offloading framework is exercised end-to-end, while the *time* each access
costs is charged separately by the protocol code.

The allocator is a first-fit free-list allocator with page-aligned
allocations. Page size is tracked per allocation because the privileged
DMA manager charges translation per page, and the paper notes that huge
pages (≥ 2 MiB) are required to reach peak bandwidth (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import BadAddressError, DoubleFreeError, OutOfMemoryError

__all__ = ["PAGE_4K", "PAGE_HUGE_2M", "Allocation", "MemoryRegion"]

#: Default small-page size.
PAGE_4K = 4 * 1024
#: Huge-page size the paper recommends for peak bandwidth.
PAGE_HUGE_2M = 2 * 1024 * 1024


@dataclass(frozen=True)
class Allocation:
    """A live allocation inside a :class:`MemoryRegion`.

    Attributes
    ----------
    addr:
        Start address (offset into the region).
    size:
        Requested size in bytes.
    page_size:
        Page size backing this allocation (4 KiB or 2 MiB huge pages).
    """

    addr: int
    size: int
    page_size: int

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.addr + self.size

    def pages(self) -> int:
        """Number of pages the allocation spans."""
        return max(1, -(-self.size // self.page_size))


class MemoryRegion:
    """One simulated physical memory with an allocator.

    Parameters
    ----------
    name:
        Human-readable name (``"ve0.hbm2"``, ``"vh.ddr4"``, ...).
    size:
        Capacity in bytes. The backing numpy buffer is allocated lazily in
        chunks? No — eagerly; keep regions modest in tests.
    default_page_size:
        Page size used by :meth:`allocate` unless overridden.
    """

    def __init__(
        self, name: str, size: int, *, default_page_size: int = PAGE_HUGE_2M
    ) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        if default_page_size <= 0:
            raise ValueError(f"page size must be positive, got {default_page_size}")
        self.name = name
        self.size = size
        self.default_page_size = default_page_size
        self._buf = np.zeros(size, dtype=np.uint8)
        #: addr -> Allocation for live allocations.
        self._allocations: dict[int, Allocation] = {}
        #: Sorted list of (start, length) free extents.
        self._free: list[tuple[int, int]] = [(0, size)]
        self.bytes_allocated = 0
        self.peak_allocated = 0
        self.total_allocations = 0

    # -- allocation -----------------------------------------------------------
    def allocate(self, size: int, *, page_size: int | None = None) -> Allocation:
        """Allocate ``size`` bytes, page-aligned; first-fit.

        Raises
        ------
        OutOfMemoryError
            If no free extent can hold the padded request.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        page = page_size or self.default_page_size
        # Round the reserved extent up to whole pages so distinct
        # allocations never share a page (matches hugetlbfs behaviour).
        padded = -(-size // page) * page
        for index, (start, length) in enumerate(self._free):
            # Align start up to the page boundary.
            aligned = -(-start // page) * page
            waste = aligned - start
            if length >= waste + padded:
                # Carve [aligned, aligned+padded) out of this extent.
                remnants = []
                if waste:
                    remnants.append((start, waste))
                tail = length - waste - padded
                if tail:
                    remnants.append((aligned + padded, tail))
                self._free[index : index + 1] = remnants
                alloc = Allocation(addr=aligned, size=size, page_size=page)
                self._allocations[aligned] = alloc
                self.bytes_allocated += padded
                self.peak_allocated = max(self.peak_allocated, self.bytes_allocated)
                self.total_allocations += 1
                return alloc
        raise OutOfMemoryError(
            f"{self.name}: cannot allocate {size} bytes "
            f"({padded} padded to {page}-byte pages); "
            f"{self.free_bytes} bytes free (fragmented into {len(self._free)} extents)"
        )

    def free(self, alloc: Allocation) -> None:
        """Free a previously-returned allocation.

        Raises
        ------
        DoubleFreeError
            If the allocation is not live (freed before, or foreign).
        """
        live = self._allocations.pop(alloc.addr, None)
        if live is None or live != alloc:
            if live is not None:  # restore: it was a different allocation
                self._allocations[alloc.addr] = live
            raise DoubleFreeError(
                f"{self.name}: free of non-live allocation at {alloc.addr:#x}"
            )
        padded = -(-alloc.size // alloc.page_size) * alloc.page_size
        self.bytes_allocated -= padded
        self._insert_free(alloc.addr, padded)

    def _insert_free(self, start: int, length: int) -> None:
        """Insert a free extent, coalescing with neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (start, length))
        # Coalesce with successor then predecessor.
        if lo + 1 < len(free) and free[lo][0] + free[lo][1] == free[lo + 1][0]:
            free[lo] = (free[lo][0], free[lo][1] + free[lo + 1][1])
            del free[lo + 1]
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            free[lo - 1] = (free[lo - 1][0], free[lo - 1][1] + free[lo][1])
            del free[lo]

    @property
    def free_bytes(self) -> int:
        """Total bytes in free extents."""
        return sum(length for _start, length in self._free)

    @property
    def live_allocations(self) -> int:
        """Number of currently-live allocations."""
        return len(self._allocations)

    def allocations(self) -> Iterator[Allocation]:
        """Iterate over live allocations (unspecified order)."""
        return iter(self._allocations.values())

    def allocation_at(self, addr: int) -> Allocation:
        """The live allocation containing ``addr``.

        Raises :class:`BadAddressError` if ``addr`` is not inside any live
        allocation.
        """
        alloc = self._allocations.get(addr)
        if alloc is not None:
            return alloc
        for candidate in self._allocations.values():
            if candidate.addr <= addr < candidate.end:
                return candidate
        raise BadAddressError(f"{self.name}: address {addr:#x} is not allocated")

    # -- raw access -----------------------------------------------------------
    def _check_range(self, addr: int, size: int) -> None:
        if size < 0:
            raise ValueError(f"negative access size {size}")
        if addr < 0 or addr + size > self.size:
            raise BadAddressError(
                f"{self.name}: access [{addr:#x}, {addr + size:#x}) outside "
                f"region of {self.size} bytes"
            )

    def write(self, addr: int, data: bytes | bytearray | memoryview | np.ndarray) -> None:
        """Copy ``data`` into the region at ``addr``."""
        view = np.frombuffer(data, dtype=np.uint8) if not isinstance(data, np.ndarray) else (
            data.view(np.uint8).reshape(-1)
        )
        self._check_range(addr, view.size)
        self._buf[addr : addr + view.size] = view

    def read(self, addr: int, size: int) -> bytes:
        """Copy ``size`` bytes out of the region starting at ``addr``."""
        self._check_range(addr, size)
        return self._buf[addr : addr + size].tobytes()

    def view(self, addr: int, size: int) -> np.ndarray:
        """Zero-copy ``uint8`` view of ``[addr, addr+size)``."""
        self._check_range(addr, size)
        return self._buf[addr : addr + size]

    # word access used by flag protocols ------------------------------------------
    def read_u64(self, addr: int) -> int:
        """Read one little-endian 64-bit word."""
        self._check_range(addr, 8)
        return int.from_bytes(self._buf[addr : addr + 8].tobytes(), "little")

    def write_u64(self, addr: int, value: int) -> None:
        """Write one little-endian 64-bit word."""
        self._check_range(addr, 8)
        self._buf[addr : addr + 8] = np.frombuffer(
            value.to_bytes(8, "little"), dtype=np.uint8
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryRegion {self.name!r} {self.size} B, "
            f"{self.bytes_allocated} allocated in {self.live_allocations} blocks>"
        )
