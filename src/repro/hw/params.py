"""Calibrated timing model of the SX-Aurora platform.

Every latency and bandwidth constant the simulation charges lives here, in
one dataclass, with provenance notes tying it to an anchor in the paper
(section numbers refer to the reproduced paper). The constants were chosen
so that the *protocols executed on the simulator* — not hard-coded totals —
reproduce the paper's headline numbers:

* Fig. 9: empty-kernel offload ≈ 80 µs (native VEO), ≈ 432 µs (HAM over
  VEO), ≈ 6.1 µs (HAM over user DMA);
* Table IV peak bandwidths: VEO 9.9 / 10.4 GiB/s, user DMA 10.6 / 11.1
  GiB/s, LHM 0.01 / SHM 0.06 GiB/s (VH⇒VE / VE⇒VH);
* Fig. 10 shapes: user DMA near peak at 1 MiB vs 64 MiB for VEO; LHM wins
  over DMA only for 1–2 words; SHM wins over DMA up to 256 B.

The calibration consistency checks live in
:mod:`repro.bench.calibration`, and ``tests/bench/test_calibration.py``
asserts the model meets every anchor within tolerance.

All times are **seconds**; all sizes **bytes**; bandwidths **bytes/s**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.hw.specs import GIB

__all__ = ["TimingModel", "DEFAULT_TIMING", "US", "NS", "WORD"]

US = 1e-6
NS = 1e-9
#: LHM/SHM move one 64-bit word per instruction (Sec. I-B).
WORD = 8


@dataclass(frozen=True)
class TimingModel:
    """All timing constants of the simulated platform.

    The default values model the A300-8 with VEOS 1.3.2-4dma and huge
    pages, i.e. the configuration of the paper's evaluation (Table III).
    """

    # -- PCIe link (Sec. V intro) -----------------------------------------
    #: Raw PCIe Gen3 x16 peak, 14.7 GiB/s.
    pcie_raw_bandwidth: float = 14.7 * GIB
    #: Max achievable fraction with 256 B payload (Sec. V: 91 % → 13.4 GiB/s).
    pcie_efficiency: float = 0.91
    #: One-way latency of a posted PCIe write reaching remote memory.
    pcie_oneway_latency: float = 0.50 * US
    #: PCIe read round-trip time (Sec. V-A cites 1.2 µs measured in [4]).
    pcie_read_rtt: float = 1.20 * US
    #: Extra latency per PCIe transaction when crossing the UPI socket
    #: interconnect (Sec. V-A: second socket adds "up to 1 µs" per offload,
    #: which involves ~4 bus crossings).
    upi_penalty: float = 0.25 * US

    # -- VEO read/write (privileged DMA through VEOS, Sec. III-D end) -----
    # High base latency: descriptor setup involves pseudo-process, VEOS
    # daemon and kernel modules talking to each other.
    veo_write_base_latency: float = 110.0 * US
    veo_read_base_latency: float = 100.0 * US
    #: Sustained wire bandwidth of privileged DMA, VH→VE (calibrated so the
    #: measured peak lands at Table IV's 9.9 GiB/s at 256 MiB).
    veo_write_bandwidth: float = 10.05 * GIB
    #: Sustained wire bandwidth VE→VH (Table IV: 10.4 GiB/s peak).
    veo_read_bandwidth: float = 10.55 * GIB
    #: Per-page virtual→physical translation cost in the 4dma DMA manager
    #: (bulk translation overlapped with transfers).
    veo_page_translate_4dma: float = 3.0 * US
    #: Per-page translation cost of the classic (pre-4dma) DMA manager:
    #: on-the-fly, unoverlapped (ablation A1).
    veo_page_translate_classic: float = 14.0 * US
    #: Classic manager also sustains lower bandwidth (Sec. III-D: 4dma
    #: "reaches and exceeds 11 GB/s"; before it stayed below).
    veo_bandwidth_classic_factor: float = 0.82

    # -- VEO native function offload (Fig. 9 "VEO" bar) --------------------
    #: Host → VE command submission (enqueue, VEOS, VE wakeup).
    veo_call_submit_latency: float = 45.0 * US
    #: VE → host completion notification and result pickup.
    veo_call_return_latency: float = 33.0 * US
    #: Host-side CPU cost of building args / parsing the result.
    veo_call_cpu_overhead: float = 2.0 * US

    # -- VE user DMA (Sec. IV-A) -------------------------------------------
    #: Descriptor setup + doorbell + completion poll, VE reading VH memory.
    udma_read_latency: float = 2.35 * US
    #: Same for VE writing VH memory (slightly cheaper; posted writes).
    udma_write_latency: float = 2.30 * US
    #: Sustained user-DMA bandwidth VH→VE (Table IV: 10.6 GiB/s peak).
    udma_read_bandwidth: float = 10.62 * GIB
    #: Sustained user-DMA bandwidth VE→VH (Table IV: 11.1 GiB/s peak).
    udma_write_bandwidth: float = 11.12 * GIB

    # -- LHM / SHM instructions (Sec. IV-A) ---------------------------------
    #: Fixed setup of an LHM/SHM instruction sequence (address computation,
    #: VEHVA checks).
    lhm_setup: float = 0.35 * US
    #: Per-word cost of LHM: a blocking PCIe read per 64-bit word. A single
    #: word thus costs ≈ the 1.2 µs PCIe RTT; sustained rate ≈ 0.01 GiB/s
    #: (Table IV).
    lhm_per_word: float = 0.85 * US
    #: Fixed setup of an SHM store sequence.
    shm_setup: float = 0.12 * US
    #: Posted SHM stores pipeline in the store queue: the first
    #: ``shm_queue_words`` words retire fast ...
    shm_per_word_burst: float = 0.058 * US
    #: ... then the queue saturates at the sustained rate (Table IV:
    #: 0.06 GiB/s → ≈ 124 ns/word).
    shm_per_word_sustained: float = 0.124 * US
    #: Store-queue depth in words.
    shm_queue_words: int = 32

    # -- InfiniBand (the optional IB HCAs of Fig. 3; used by the remote-
    # offloading extension, cf. the paper's outlook on heterogeneous MPI) --
    #: One-way latency of a small IB message (EDR-class fabric).
    ib_latency: float = 1.6 * US
    #: Sustained IB bandwidth (100 Gb/s EDR minus protocol overhead).
    ib_bandwidth: float = 11.5e9

    # -- VEOS process management (setup-time costs, not on the offload
    # critical path once running) -------------------------------------------
    #: Creating a VE process (``veo_proc_create``): firmware handshake,
    #: VEOS bookkeeping. Dominated by loading, so coarse.
    veos_proc_create_time: float = 120_000.0 * US
    #: Loading a shared library image into a VE process.
    veos_lib_load_time: float = 15_000.0 * US
    #: Opening a VEO thread context.
    veo_context_open_time: float = 500.0 * US
    #: A VE-issued system call reverse-offloaded to the pseudo process on
    #: the VH (VHcall semantics, Sec. I-B).
    veos_syscall_latency: float = 28.0 * US

    # -- framework CPU costs (HAM-Offload runtime) --------------------------
    #: VH: serialize a functor into an active message.
    cpu_serialize: float = 0.35 * US
    #: Deserialize an active message / result.
    cpu_deserialize: float = 0.25 * US
    #: Handler-key lookup + dispatch through the message handler table.
    cpu_dispatch: float = 0.15 * US
    #: Resolve a future (result matching, state update).
    cpu_future_resolve: float = 0.20 * US
    #: Write a message + flag into process-local memory.
    cpu_local_write: float = 0.15 * US
    #: One poll iteration on process-local memory.
    cpu_local_poll: float = 0.05 * US
    #: VE-side serialize of the (small) result message.
    cpu_result_serialize: float = 0.20 * US

    # -- memory subsystem ----------------------------------------------------
    #: Local memory copy bandwidth on the VH (DDR4 stream-ish).
    vh_memcpy_bandwidth: float = 9.5e9
    #: Local memory copy bandwidth on the VE (HBM2).
    ve_memcpy_bandwidth: float = 6.0e10

    # -- derived helpers -----------------------------------------------------
    @property
    def pcie_max_bandwidth(self) -> float:
        """Maximum achievable PCIe bandwidth (91 % of raw → 13.4 GiB/s)."""
        return self.pcie_raw_bandwidth * self.pcie_efficiency

    # VEO transfers --------------------------------------------------------
    def veo_transfer_time(
        self,
        size: int,
        *,
        direction: str,
        page_size: int,
        four_dma: bool = True,
        upi_hops: int = 0,
    ) -> float:
        """Duration of one ``veo_read_mem``/``veo_write_mem`` operation.

        Parameters
        ----------
        size:
            Transfer size in bytes.
        direction:
            ``"vh_to_ve"`` (write) or ``"ve_to_vh"`` (read).
        page_size:
            Page size of the VH buffer; translation is charged per page.
        four_dma:
            Whether the improved 1.3.2-4dma DMA manager is active.
        upi_hops:
            Number of UPI crossings on the path (0 for the local socket).
        """
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        if direction == "vh_to_ve":
            base = self.veo_write_base_latency
            bandwidth = self.veo_write_bandwidth
        elif direction == "ve_to_vh":
            base = self.veo_read_base_latency
            bandwidth = self.veo_read_bandwidth
        else:
            raise ValueError(f"unknown direction {direction!r}")
        per_page = (
            self.veo_page_translate_4dma if four_dma else self.veo_page_translate_classic
        )
        if not four_dma:
            bandwidth *= self.veo_bandwidth_classic_factor
        pages = max(1, math.ceil(size / page_size)) if size else 1
        wire = size / min(bandwidth, self.pcie_max_bandwidth)
        return base + pages * per_page + wire + upi_hops * self.upi_penalty

    def veo_transfer_parts(
        self,
        size: int,
        *,
        direction: str,
        page_size: int,
        four_dma: bool = True,
        upi_hops: int = 0,
    ) -> tuple[float, float]:
        """Split a VEO transfer into ``(setup, wire)`` durations.

        ``setup`` covers descriptor building, translation and the software
        path (does not occupy the PCIe wire); ``wire`` is the actual data
        movement. The sum equals :meth:`veo_transfer_time`.
        """
        total = self.veo_transfer_time(
            size, direction=direction, page_size=page_size,
            four_dma=four_dma, upi_hops=upi_hops,
        )
        if direction == "vh_to_ve":
            bandwidth = self.veo_write_bandwidth
        else:
            bandwidth = self.veo_read_bandwidth
        if not four_dma:
            bandwidth *= self.veo_bandwidth_classic_factor
        wire = size / min(bandwidth, self.pcie_max_bandwidth)
        return total - wire, wire

    # user DMA ---------------------------------------------------------------
    def udma_transfer_time(self, size: int, *, direction: str, upi_hops: int = 0) -> float:
        """Duration of one VE user-DMA transfer (Sec. IV-A).

        ``direction`` is ``"vh_to_ve"`` (DMA read from host memory) or
        ``"ve_to_vh"`` (DMA write into host memory). No per-page cost: the
        memory was pre-registered in the DMAATB, so no translation happens
        at transfer time — this is exactly why the paper's DMA protocol is
        fast.
        """
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        if direction == "vh_to_ve":
            latency, bandwidth = self.udma_read_latency, self.udma_read_bandwidth
        elif direction == "ve_to_vh":
            latency, bandwidth = self.udma_write_latency, self.udma_write_bandwidth
        else:
            raise ValueError(f"unknown direction {direction!r}")
        wire = size / min(bandwidth, self.pcie_max_bandwidth)
        return latency + wire + upi_hops * self.upi_penalty

    def udma_transfer_parts(
        self, size: int, *, direction: str, upi_hops: int = 0
    ) -> tuple[float, float]:
        """Split a user-DMA transfer into ``(setup, wire)`` durations."""
        total = self.udma_transfer_time(size, direction=direction, upi_hops=upi_hops)
        bandwidth = (
            self.udma_read_bandwidth if direction == "vh_to_ve" else self.udma_write_bandwidth
        )
        wire = size / min(bandwidth, self.pcie_max_bandwidth)
        return total - wire, wire

    # LHM / SHM ---------------------------------------------------------------
    def lhm_time(self, size: int, *, upi_hops: int = 0) -> float:
        """Duration of loading ``size`` bytes from VH memory word-by-word.

        Each LHM is a blocking PCIe read; a single word costs about the
        PCIe round trip.
        """
        words = max(1, math.ceil(size / WORD))
        per_word = self.lhm_per_word + upi_hops * self.upi_penalty
        return self.lhm_setup + words * per_word

    def shm_time(self, size: int) -> float:
        """VE-side occupancy of storing ``size`` bytes to VH memory.

        SHM stores are posted: this is the time the VE core is busy
        issuing them. Visibility on the VH additionally lags by
        :meth:`shm_visibility_delay`. The first ``shm_queue_words`` words
        retire at burst rate; once the store queue is full the sustained
        rate (Table IV: 0.06 GiB/s) applies.
        """
        words = max(1, math.ceil(size / WORD))
        fast = min(words, self.shm_queue_words)
        slow = words - fast
        return (
            self.shm_setup
            + fast * self.shm_per_word_burst
            + slow * self.shm_per_word_sustained
        )

    def shm_visibility_delay(self, *, upi_hops: int = 0) -> float:
        """Lag between the last SHM store issuing and VH visibility."""
        return self.pcie_oneway_latency + upi_hops * self.upi_penalty

    # VEO function call ---------------------------------------------------------
    def veo_call_time(self, *, upi_hops: int = 0) -> float:
        """End-to-end duration of a native empty ``veo_call`` (Fig. 9 "VEO")."""
        return (
            self.veo_call_cpu_overhead
            + self.veo_call_submit_latency
            + self.veo_call_return_latency
            + 2 * upi_hops * self.upi_penalty
        )

    # InfiniBand -----------------------------------------------------------------
    def ib_transfer_time(self, size: int) -> float:
        """One-way duration of an InfiniBand message of ``size`` bytes."""
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        return self.ib_latency + size / self.ib_bandwidth

    # local copies ---------------------------------------------------------------
    def memcpy_time(self, size: int, *, device: str) -> float:
        """Local copy duration on ``device`` (``"vh"`` or ``"ve"``)."""
        bandwidth = self.vh_memcpy_bandwidth if device == "vh" else self.ve_memcpy_bandwidth
        return size / bandwidth

    # variants ---------------------------------------------------------------------
    def with_overrides(self, **kwargs: float) -> "TimingModel":
        """Return a copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: The default, paper-calibrated timing model.
DEFAULT_TIMING = TimingModel()
