"""Assembly of one simulated SX-Aurora machine.

:class:`AuroraMachine` wires together the simulator, the Vector Host, the
Vector Engines with their PCIe links, and one VEOS daemon per VE — the
configuration of paper Fig. 3 / Table III. It is the root object the VEO
API, the timed communication backends and the benchmarks build on.

The ``socket`` parameter selects which CPU socket the VH process runs on;
links to VEs hanging off the *other* socket's PCIe switch are charged UPI
penalties (the paper's Sec. V-A second-socket experiment).
"""

from __future__ import annotations

from repro.hw.memory import MemoryRegion
from repro.hw.params import DEFAULT_TIMING, TimingModel
from repro.hw.pcie import PcieLink
from repro.hw.specs import A300_8, MIB, SystemSpec
from repro.hw.topology import SystemTopology
from repro.hw.vector_engine import VectorEngine
from repro.hw.vector_host import VectorHost
from repro.sim import Resource, Simulator, Tracer
from repro.veos.daemon import VeosDaemon

__all__ = ["AuroraMachine"]


class AuroraMachine:
    """One simulated NEC SX-Aurora TSUBASA node.

    Parameters
    ----------
    num_ves:
        Number of Vector Engines to instantiate (≤ the spec's count).
    socket:
        CPU socket the VH process is pinned to (0 or 1 on the A300-8).
    timing:
        The timing model; override for ablations.
    four_dma:
        Whether VEOS runs the improved ``1.3.2-4dma`` DMA manager.
    spec:
        System specification (defaults to the paper's A300-8).
    ve_memory_bytes / vh_memory_bytes:
        Simulated memory capacities (kept far below the spec'd sizes so
        the host machine running the simulation stays comfortable).
    """

    def __init__(
        self,
        *,
        num_ves: int = 1,
        socket: int = 0,
        timing: TimingModel = DEFAULT_TIMING,
        four_dma: bool = True,
        spec: SystemSpec = A300_8,
        ve_memory_bytes: int = 64 * MIB,
        vh_memory_bytes: int = 64 * MIB,
        sim: Simulator | None = None,
        name: str = "node0",
    ) -> None:
        if not 1 <= num_ves <= spec.num_ves:
            raise ValueError(f"num_ves must be in 1..{spec.num_ves}, got {num_ves}")
        if not 0 <= socket < spec.num_cpu_sockets:
            raise ValueError(f"socket must be in 0..{spec.num_cpu_sockets - 1}")
        self.spec = spec
        self.socket = socket
        self.timing = timing
        self.name = name
        self.topology = SystemTopology(spec)
        # Several machines may share one simulator (cluster operation);
        # only the first owner attaches a tracer.
        self.sim = sim if sim is not None else Simulator()
        if self.sim.tracer is None:
            self.tracer = Tracer().attach(self.sim)
        else:
            self.tracer = self.sim.tracer
        self.vh = VectorHost(
            self.sim, timing, spec=spec.cpu, num_sockets=spec.num_cpu_sockets,
            memory_bytes=vh_memory_bytes,
        )
        self.links: list[PcieLink] = []
        self.ves: list[VectorEngine] = []
        self.daemons: list[VeosDaemon] = []
        # One shared uplink per PCIe switch (Fig. 3: two switches with
        # four VE slots each) — bulk transfers of same-switch VEs contend.
        num_switches = max(1, spec.num_ves // spec.ves_per_switch)
        self.switch_uplinks = [Resource(self.sim) for _ in range(num_switches)]
        for index in range(num_ves):
            switch = min(index // spec.ves_per_switch, num_switches - 1)
            link = PcieLink(
                self.sim,
                name=f"pcie.ve{index}",
                upi_hops=self.topology.upi_hops(socket, index),
                uplink=self.switch_uplinks[switch],
            )
            ve = VectorEngine(
                self.sim, index, timing, link, spec=spec.ve,
                memory_bytes=ve_memory_bytes,
            )
            self.links.append(link)
            self.ves.append(ve)
            self.daemons.append(VeosDaemon(self.sim, timing, ve, four_dma=four_dma))

    @property
    def num_ves(self) -> int:
        """Number of instantiated Vector Engines."""
        return len(self.ves)

    def ve(self, index: int = 0) -> VectorEngine:
        """The ``index``-th Vector Engine."""
        return self.ves[index]

    def daemon(self, index: int = 0) -> VeosDaemon:
        """The VEOS daemon of the ``index``-th VE."""
        return self.daemons[index]

    def link(self, index: int = 0) -> PcieLink:
        """The PCIe link of the ``index``-th VE."""
        return self.links[index]

    def scratch_region(self) -> MemoryRegion:
        """The VH's DDR4 region (staging area for VEO transfers)."""
        return self.vh.ddr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AuroraMachine {self.spec.name!r} socket={self.socket} "
            f"ves={self.num_ves} t={self.sim.now * 1e6:.1f}us>"
        )
