"""VE program images: libraries and symbols.

A real VE library is an ELF file compiled with NEC's NCC; VEO loads it
into the VE process and resolves C symbols by name. Here, a
:class:`VeLibrary` maps symbol names onto Python callables, with two
flavours mirroring what the paper's setup needs:

* **plain functions** — called with the VEO arguments; an optional
  ``duration`` (seconds or a callable of the args) charges VE compute
  time. This models normal VEO kernels, including the *empty kernel* of
  Fig. 9.
* **server functions** — generator functions that run as long-lived
  simulation processes on the VE. ``ham_main`` is one: VEO starts it
  asynchronously and it then polls for active messages forever
  (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import VeoSymbolError

__all__ = ["VeSymbol", "VeLibrary"]


@dataclass(frozen=True)
class VeSymbol:
    """One resolvable symbol of a VE library.

    Attributes
    ----------
    name:
        The C symbol name.
    fn:
        The Python callable standing in for the VE machine code. If
        ``is_server`` it must be a generator function (run as a sim
        process); otherwise a plain callable returning the result.
    duration:
        VE compute time per call: a constant in seconds, or a callable
        ``duration(*args) -> seconds``. Ignored for server symbols.
    is_server:
        Whether the symbol is a long-lived server entry point.
    """

    name: str
    fn: Callable[..., Any]
    duration: float | Callable[..., float] = 0.0
    is_server: bool = False

    def compute_time(self, args: tuple[Any, ...]) -> float:
        """VE execution time for ``args``."""
        if callable(self.duration):
            return float(self.duration(*args))
        return float(self.duration)


class VeLibrary:
    """A loadable VE library: a named collection of symbols.

    The HAM-Offload model of "compile the whole application for both
    sides" (Sec. III-C) corresponds to building one :class:`VeLibrary`
    from the application's offloadable functions; ``main`` is renamed to
    ``ham_main`` transparently, which :meth:`add_server` mirrors.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._symbols: dict[str, VeSymbol] = {}

    def add_function(
        self,
        name: str,
        fn: Callable[..., Any],
        *,
        duration: float | Callable[..., float] = 0.0,
    ) -> VeSymbol:
        """Register a plain VE function under ``name``."""
        symbol = VeSymbol(name=name, fn=fn, duration=duration)
        self._symbols[name] = symbol
        return symbol

    def add_server(self, name: str, generator_fn: Callable[..., Any]) -> VeSymbol:
        """Register a long-lived server entry point (e.g. ``ham_main``)."""
        symbol = VeSymbol(name=name, fn=generator_fn, is_server=True)
        self._symbols[name] = symbol
        return symbol

    def get_symbol(self, name: str) -> VeSymbol:
        """Resolve a symbol by name.

        Raises
        ------
        VeoSymbolError
            If the library exports no such symbol.
        """
        try:
            return self._symbols[name]
        except KeyError:
            raise VeoSymbolError(
                f"library {self.name!r} has no symbol {name!r} "
                f"(exports: {sorted(self._symbols)})"
            ) from None

    def symbols(self) -> list[str]:
        """Sorted list of exported symbol names."""
        return sorted(self._symbols)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols
