"""The privileged DMA manager inside VEOS.

VEO's ``read_mem``/``write_mem`` use the *system (privileged) DMA engine*,
which is shared by all cores of one VE and controlled by this manager
(paper Sec. I-B). Its descriptors require absolute (physical) addresses,
so the manager translates virtual addresses **on the fly** — and setting a
transfer up involves three communicating components (pseudo process, VEOS
daemon, kernel modules). Both effects make the per-operation latency high
(~100 µs), which is the quantitative villain of the paper's evaluation.

Two manager generations are modeled (ablation A1):

* ``four_dma=True`` — the improved VEOS **1.3.2-4dma** manager: bulk
  virtual→physical translations overlapped with descriptor generation and
  transfers; reaches > 11 GB/s with huge pages (Sec. III-D);
* ``four_dma=False`` — the classic manager with unoverlapped per-page
  translation and lower sustained bandwidth.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.errors import DmaError
from repro.hw.memory import MemoryRegion
from repro.hw.params import TimingModel
from repro.hw.pcie import PcieLink
from repro.sim import Event, Resource, Simulator

__all__ = ["PrivilegedDmaManager"]


class PrivilegedDmaManager:
    """The VEOS DMA manager driving the privileged DMA engine of one VE.

    Parameters
    ----------
    sim, timing, link:
        Simulator, timing model and the PCIe link of the VE.
    four_dma:
        Select the improved ``1.3.2-4dma`` manager (default) or the
        classic one.
    """

    def __init__(
        self,
        sim: Simulator,
        timing: TimingModel,
        link: PcieLink,
        *,
        four_dma: bool = True,
        name: str = "pdma",
    ) -> None:
        self.sim = sim
        self.timing = timing
        self.link = link
        self.four_dma = four_dma
        self.name = name
        #: One privileged DMA engine per VE, shared by all its cores.
        self._engine = Resource(sim, capacity=1)
        self.transfer_count = 0
        self.pages_translated = 0

    def transfer(
        self,
        src_region: MemoryRegion,
        src_addr: int,
        dst_region: MemoryRegion,
        dst_addr: int,
        size: int,
        *,
        direction: str,
        page_size: int,
    ) -> Generator[Event, Any, None]:
        """Move ``size`` bytes through the privileged DMA (generator).

        ``direction`` is ``"vh_to_ve"`` for a VEO write, ``"ve_to_vh"``
        for a VEO read; ``page_size`` is the page size of the *VH-side*
        buffer, whose translation the manager pays for per page.
        """
        if size < 0:
            raise DmaError(f"{self.name}: negative transfer size {size}")
        setup, wire = self.timing.veo_transfer_parts(
            size,
            direction=direction,
            page_size=page_size,
            four_dma=self.four_dma,
            upi_hops=self.link.upi_hops,
        )
        yield self._engine.request()
        try:
            # Descriptor setup / address translation: does not occupy the
            # PCIe wire, so concurrent user-DMA traffic can interleave.
            yield self.sim.timeout(setup)
            yield from self.link.transfer(wire, size, direction)
            if size:
                dst_region.write(dst_addr, src_region.read(src_addr, size))
            self.transfer_count += 1
            self.pages_translated += max(1, -(-size // page_size)) if size else 1
        finally:
            self._engine.release()

    @property
    def queue_length(self) -> int:
        """Transfers waiting for the (single, shared) engine."""
        return self._engine.queue_length
