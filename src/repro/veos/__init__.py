"""VEOS — the Vector Engine Operating System substrate.

The VE runs **no operating system** (paper Sec. I-B): all OS functionality
is offloaded to the Linux host. This subpackage models the three VEOS
components the paper describes, to the fidelity the protocols observe:

``daemon``
    The per-VE ``veos`` daemon: process management and ownership of the
    privileged DMA engine.
``dma_manager``
    The DMA manager inside VEOS that executes VEO's read/write transfers,
    translating virtual to physical addresses *on the fly* — the very
    overhead the paper's Sec. IV protocol avoids. Supports both the
    classic manager and the improved ``1.3.2-4dma`` bulk-translation
    manager (ablation A1).
``pseudo_process``
    The VH user process paired with every VE process; executes the VE's
    system calls in the user's context (reverse offloading / VHcall).
``loader``
    VE program/library images and their symbol tables.
"""

from repro.veos.daemon import VeosDaemon, VeProcess
from repro.veos.dma_manager import PrivilegedDmaManager
from repro.veos.loader import VeLibrary, VeSymbol
from repro.veos.pseudo_process import PseudoProcess

__all__ = [
    "PrivilegedDmaManager",
    "PseudoProcess",
    "VeLibrary",
    "VeProcess",
    "VeSymbol",
    "VeosDaemon",
]
