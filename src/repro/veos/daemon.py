"""The per-VE ``veos`` daemon and VE processes.

Each VE has its own VEOS instance (paper Sec. I-B) consisting of the
user-space daemon (memory & process management, scheduling, DMA), the
kernel modules and a per-process *pseudo process*. The daemon model here
owns:

* the VE **process table** — creation, lookup, teardown;
* the **privileged DMA manager** (:mod:`repro.veos.dma_manager`);
* per-process memory accounting in the VE's HBM2.

A :class:`VeProcess` is the unit VEO talks to: it has loaded libraries, a
heap in VE memory, and can run symbols either as timed function calls or
as long-lived server processes (``ham_main``).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.errors import VeoProcError, VeosError
from repro.hw.memory import Allocation
from repro.hw.params import TimingModel
from repro.hw.vector_engine import VectorEngine
from repro.sim import Event, Process, Simulator
from repro.veos.dma_manager import PrivilegedDmaManager
from repro.veos.loader import VeLibrary, VeSymbol
from repro.veos.pseudo_process import PseudoProcess

__all__ = ["VeosDaemon", "VeProcess"]


class VeProcess:
    """One process running (OS-less) on a Vector Engine.

    Created by :meth:`VeosDaemon.create_process`. Holds loaded libraries,
    heap allocations in HBM2, and the paired host-side
    :class:`~repro.veos.pseudo_process.PseudoProcess` executing its
    system calls.
    """

    def __init__(self, daemon: "VeosDaemon", pid: int) -> None:
        self.daemon = daemon
        self.pid = pid
        self.alive = True
        self._libraries: dict[str, VeLibrary] = {}
        self._heap: dict[int, Allocation] = {}
        self.pseudo = PseudoProcess(daemon.sim, daemon.timing, self)
        self._servers: list[Process] = []

    # -- libraries -------------------------------------------------------
    def load_library(self, library: VeLibrary) -> VeLibrary:
        """Load a library image (idempotent per name)."""
        self._check_alive()
        self._libraries[library.name] = library
        return library

    def find_symbol(self, library_name: str, symbol: str) -> VeSymbol:
        """Resolve ``symbol`` in a loaded library."""
        self._check_alive()
        try:
            library = self._libraries[library_name]
        except KeyError:
            raise VeoProcError(
                f"process {self.pid}: library {library_name!r} not loaded"
            ) from None
        return library.get_symbol(symbol)

    # -- memory ---------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate VE heap memory; returns the VE address."""
        self._check_alive()
        alloc = self.daemon.ve.hbm.allocate(size)
        self._heap[alloc.addr] = alloc
        return alloc.addr

    def free(self, addr: int) -> None:
        """Free a :meth:`malloc` allocation."""
        self._check_alive()
        alloc = self._heap.pop(addr, None)
        if alloc is None:
            raise VeoProcError(f"process {self.pid}: free of unknown address {addr:#x}")
        self.daemon.ve.hbm.free(alloc)

    @property
    def heap_allocations(self) -> int:
        """Number of live heap allocations."""
        return len(self._heap)

    # -- execution ----------------------------------------------------------
    def run_function(
        self, symbol: VeSymbol, args: tuple[Any, ...]
    ) -> Generator[Event, Any, Any]:
        """Run a plain symbol on the VE (generator; yields compute time)."""
        self._check_alive()
        if symbol.is_server:
            raise VeosError(f"symbol {symbol.name!r} is a server entry point")
        duration = symbol.compute_time(args)
        if duration > 0:
            yield self.daemon.sim.timeout(duration)
        else:
            # Even an empty kernel costs one scheduling step.
            yield self.daemon.sim.timeout(0.0)
        return symbol.fn(*args)

    def start_server(self, symbol: VeSymbol, args: tuple[Any, ...]) -> Process:
        """Start a server symbol as a long-lived simulation process."""
        self._check_alive()
        if not symbol.is_server:
            raise VeosError(f"symbol {symbol.name!r} is not a server entry point")
        process = self.daemon.sim.process(
            symbol.fn(*args), name=f"ve{self.daemon.ve.index}.{symbol.name}"
        )
        self._servers.append(process)
        return process

    # -- teardown ----------------------------------------------------------
    def destroy(self) -> None:
        """Terminate the process and free its resources."""
        self._check_alive()
        self.alive = False
        for process in self._servers:
            if process.is_alive:
                process.interrupt("process destroyed")
        for alloc in list(self._heap.values()):
            self.daemon.ve.hbm.free(alloc)
        self._heap.clear()
        self.daemon._reap(self.pid)

    def _check_alive(self) -> None:
        if not self.alive:
            raise VeoProcError(f"VE process {self.pid} is dead")


class VeosDaemon:
    """The VEOS daemon instance of one Vector Engine.

    Parameters
    ----------
    sim, timing:
        Simulator and timing model.
    ve:
        The Vector Engine this daemon manages.
    four_dma:
        DMA-manager generation (see :class:`PrivilegedDmaManager`).
    """

    def __init__(
        self,
        sim: Simulator,
        timing: TimingModel,
        ve: VectorEngine,
        *,
        four_dma: bool = True,
    ) -> None:
        self.sim = sim
        self.timing = timing
        self.ve = ve
        self.dma_manager = PrivilegedDmaManager(
            sim, timing, ve.link, four_dma=four_dma, name=f"ve{ve.index}.pdma"
        )
        self._processes: dict[int, VeProcess] = {}
        self._next_pid = 1

    def create_process(self) -> VeProcess:
        """Create a VE process (the slow path behind ``veo_proc_create``)."""
        pid = self._next_pid
        self._next_pid += 1
        process = VeProcess(self, pid)
        self._processes[pid] = process
        return process

    def process_by_pid(self, pid: int) -> VeProcess:
        """Look up a live process."""
        try:
            return self._processes[pid]
        except KeyError:
            raise VeoProcError(f"no VE process with pid {pid}") from None

    @property
    def num_processes(self) -> int:
        """Number of live VE processes."""
        return len(self._processes)

    def _reap(self, pid: int) -> None:
        self._processes.pop(pid, None)
