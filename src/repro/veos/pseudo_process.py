"""The VH-side pseudo process paired with every VE process.

Paper Sec. I-B: "*a user process corresponding to each VE process ...
is executing the VE syscalls in the user's context and under Linux*".
This reverse offloading (the VHcall mechanism exposes the same path to
applications) gives VE programs a Linux look-and-feel at the price of a
host round trip per system call.

The model registers named syscall handlers (host-side Python callables)
and charges :attr:`~repro.hw.params.TimingModel.veos_syscall_latency` per
invocation. It is exercised by the VHcall example and by tests; the
paper's offload protocols themselves avoid syscalls on the fast path —
precisely the point of Sec. IV.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import VeosError
from repro.hw.params import TimingModel
from repro.sim import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.veos.daemon import VeProcess

__all__ = ["PseudoProcess"]


class PseudoProcess:
    """Host-side agent executing a VE process's system calls."""

    def __init__(self, sim: Simulator, timing: TimingModel, ve_process: "VeProcess") -> None:
        self.sim = sim
        self.timing = timing
        self.ve_process = ve_process
        self._handlers: dict[str, Callable[..., Any]] = {}
        self.syscall_count = 0
        self._install_defaults()

    def _install_defaults(self) -> None:
        clock = {"value": 0}

        def sys_getpid() -> int:
            return self.ve_process.pid

        def sys_write(fd: int, data: bytes) -> int:
            # Modeled stdout/stderr: captured, not printed.
            self.captured_output.append((fd, bytes(data)))
            return len(data)

        def sys_time() -> float:
            return self.sim.now

        def sys_monotonic_counter() -> int:
            clock["value"] += 1
            return clock["value"]

        self.captured_output: list[tuple[int, bytes]] = []
        self._handlers.update(
            {
                "getpid": sys_getpid,
                "write": sys_write,
                "time": sys_time,
                "counter": sys_monotonic_counter,
            }
        )

    def register(self, name: str, handler: Callable[..., Any]) -> None:
        """Register (or replace) a syscall/VHcall handler."""
        self._handlers[name] = handler

    def syscall(self, name: str, *args: Any) -> Generator[Event, Any, Any]:
        """Reverse-offload one system call (generator; returns the result).

        Raises
        ------
        VeosError
            If no handler is registered under ``name``.
        """
        handler = self._handlers.get(name)
        if handler is None:
            raise VeosError(
                f"pseudo process of pid {self.ve_process.pid}: "
                f"unknown syscall {name!r}"
            )
        yield self.sim.timeout(self.timing.veos_syscall_latency)
        self.syscall_count += 1
        return handler(*args)

    def known_syscalls(self) -> list[str]:
        """Sorted names of registered handlers."""
        return sorted(self._handlers)
