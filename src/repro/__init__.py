"""repro — HAM-Offload on the NEC SX-Aurora TSUBASA, reproduced in Python.

Reproduction of M. Noack, E. Focht, T. Steinke, *Heterogeneous Active
Messages for Offloading on the NEC SX-Aurora TSUBASA* (HCW/IPDPSW 2019):
the HAM/HAM-Offload framework with functional local/TCP backends and a
timed discrete-event simulation of the SX-Aurora platform.

Top-level convenience re-exports::

    from repro import Runtime, f2f, offloadable
    from repro.backends import DmaCommBackend

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.machine import AuroraMachine
from repro.offload import BufferPtr, Future, NodeDescriptor, Runtime, f2f, offloadable

__version__ = "1.0.0"

__all__ = [
    "AuroraMachine",
    "BufferPtr",
    "Future",
    "NodeDescriptor",
    "Runtime",
    "__version__",
    "f2f",
    "offloadable",
]
