"""The generic message handler — receive side of Fig. 6.

``execute_message`` is what every HAM-Offload target runs when a message
buffer is handed to it: parse the header, translate the globally valid
handler key into the local handler through the image's O(1) table, decode
the typed arguments ("the way for the typeless bytes of the receive
buffer back into the typesafe world", paper Sec. III-E), resolve
target-local argument kinds (buffer pointers), call the function, and
build the result (or error) message.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable

from repro.errors import RemoteExecutionError, SerializationError
from repro.ham.functor import Functor
from repro.ham.message import (
    MSG_ERROR,
    MSG_INVOKE,
    MSG_RESULT,
    MSG_SHUTDOWN,
    build_message,
    build_message_parts,
    parse_message,
)
from repro.ham.registry import ProcessImage
from repro.ham.serialization import deserialize, serialize
from repro.telemetry import context as trace_context
from repro.telemetry import recorder as telemetry
from repro.telemetry.context import TraceContext

__all__ = ["build_invoke", "build_invoke_parts", "execute_message", "unpack_result"]

#: Resolver hook: maps wire-level arguments (e.g. buffer_ptr) to
#: target-local values (e.g. memory views). Identity by default.
Resolver = Callable[[Any], Any]


def build_invoke_parts(
    image: ProcessImage, functor: Functor, msg_id: int
) -> list:
    """Serialize a functor into INVOKE message buffers (send side).

    The scatter-gather form of :func:`build_invoke`: returns
    ``[header, *payload_parts]`` where large array arguments remain
    :class:`memoryview` objects over their own storage, so a vectored
    transport ships them without ``tobytes()`` copies.

    Telemetry phase ``offload.serialize``: the cost of turning the typed
    functor into wire bytes, on whichever backend posts it.

    When a distributed trace is active (the runtime opens one per
    offload), its context is stamped into the version-2 header with the
    ``offload.serialize`` span as the wire parent — the target-side
    execution spans re-attach there, forming one causal tree across the
    process boundary.
    """
    with telemetry.span("offload.serialize", functor=functor.type_name) as span:
        key = image.key_for(functor.type_name)
        ctx = trace_context.current()
        if ctx is None:
            parts = build_message_parts(
                MSG_INVOKE, key, msg_id, functor.serialize_args_parts()
            )
        else:
            parts = build_message_parts(
                MSG_INVOKE, key, msg_id, functor.serialize_args_parts(),
                trace_id=ctx.trace_id,
                # The serialize span itself (when recording) is the
                # causal parent of the remote execution; fall back to
                # the context's own parent when telemetry is off.
                parent_span_id=span.span_id or ctx.span_id,
                trace_flags=ctx.flags,
            )
        nbytes = sum(len(part) for part in parts)
        span.set("bytes", nbytes)
    recorder = telemetry.get()
    if recorder is not None:
        # Continuous profiling: per-kernel byte attribution, fed for
        # every offload regardless of the sampling verdict.
        recorder.profiles.add_bytes(functor.type_name, nbytes)
    return parts


def build_invoke(image: ProcessImage, functor: Functor, msg_id: int) -> bytes:
    """Serialize a functor into one contiguous INVOKE message.

    Backends that place messages into fixed slots (local, sim) use this
    joined form; the TCP backend sends :func:`build_invoke_parts`
    directly through vectored I/O.
    """
    return b"".join(build_invoke_parts(image, functor, msg_id))


def execute_message(
    image: ProcessImage, data: bytes, resolver: Resolver | None = None
) -> tuple[bytes, bool]:
    """Execute one received message; returns ``(reply_bytes, keep_running)``.

    ``keep_running`` is ``False`` for a SHUTDOWN message (its reply is an
    empty RESULT acknowledging termination).

    VE-side failures never crash the message loop: they are captured into
    an ERROR reply carrying the remote traceback.
    """
    header, payload = parse_message(data)
    if header.kind == MSG_SHUTDOWN:
        return build_message(MSG_RESULT, 0, header.msg_id, serialize(None)), False
    if header.kind != MSG_INVOKE:
        raise SerializationError(
            f"target received non-invoke message kind {header.kind}"
        )
    # Re-enter the sender's distributed trace (version-2 headers carry
    # it; version-1 messages execute untraced, exactly as before): the
    # execute span below records the same trace_id and — when this
    # process's local span stack is empty, i.e. a real remote target —
    # parents itself to the host span named in the header.
    if header.trace_id:
        ctx = TraceContext(
            trace_id=header.trace_id,
            span_id=header.parent_span_id,
            sampled=bool(header.trace_flags & trace_context.FLAG_SAMPLED),
        )
    else:
        ctx = None
    # Telemetry phase ``offload.execute``: argument decode + handler run +
    # reply build on the target (the host process for the local backend,
    # the forked server for TCP).
    with trace_context.activate(ctx), \
            telemetry.span("offload.execute", bytes=len(data)) as span:
        try:
            entry = image.entry_for_key(header.handler_key)
            span.set("handler", entry.type_name)
            args, kwargs = Functor.deserialize_args(payload)
            if resolver is not None:
                args = tuple(resolver(arg) for arg in args)
                kwargs = {name: resolver(value) for name, value in kwargs.items()}
            value = entry.handler(*args, **kwargs)
            reply_payload = serialize(value)
        except Exception as exc:  # noqa: BLE001 - shipped back to the host
            telemetry.count("execute.errors")
            span.set("error", type(exc).__name__)
            info = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            return build_message(
                MSG_ERROR, 0, header.msg_id, serialize(info),
                trace_id=header.trace_id,
                parent_span_id=span.span_id or header.parent_span_id,
                trace_flags=header.trace_flags,
            ), True
    telemetry.count("execute.messages")
    return build_message(
        MSG_RESULT, 0, header.msg_id, reply_payload,
        trace_id=header.trace_id,
        parent_span_id=span.span_id or header.parent_span_id,
        trace_flags=header.trace_flags,
    ), True


def unpack_result(data: bytes) -> tuple[int, Any]:
    """Decode a RESULT/ERROR message on the host; returns ``(msg_id, value)``.

    Raises
    ------
    RemoteExecutionError
        If the message is an ERROR reply — the remote traceback is
        attached.
    SerializationError
        If the message is not a result at all.
    """
    # Telemetry phase ``offload.deserialize``: reply decode on the host.
    with telemetry.span("offload.deserialize", bytes=len(data)):
        header, payload = parse_message(data)
        if header.kind == MSG_ERROR:
            info = deserialize(payload)
            raise RemoteExecutionError(
                f"remote {info['type']}: {info['message']}",
                remote_traceback=info.get("traceback", ""),
            )
        if header.kind != MSG_RESULT:
            raise SerializationError(
                f"expected a result message, got kind {header.kind}"
            )
        return header.msg_id, deserialize(payload)
