"""Functor binding — the ``f2f()`` construct of the HAM-Offload API.

``f2f(function, args...)`` (paper Table II: "function to functor
conversion") binds arguments to an *offloadable* function and yields a
:class:`Functor` the runtime can serialize into an active message. The
function must have been registered (decorated with
:func:`~repro.ham.registry.offloadable`) so that every process image knows
its message type.

Beyond the C++ original, keyword arguments are supported (``f2f(fn, x,
scale=2.0)``) — they serialize alongside the positional ones and are
applied on the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import HamError
from repro.ham.registry import Catalog, global_catalog, type_name_of
from repro.ham.serialization import deserialize, serialize_parts

__all__ = ["Functor", "f2f"]


@dataclass(frozen=True)
class Functor:
    """An offloadable closure: a message type plus bound arguments.

    Attributes
    ----------
    type_name:
        The globally comparable message-type name.
    args:
        The bound positional arguments.
    kwargs:
        The bound keyword arguments as a sorted tuple of ``(name, value)``
        pairs (kept as a tuple so the functor stays a frozen value type).
    """

    type_name: str
    args: tuple[Any, ...]
    kwargs: tuple[tuple[str, Any], ...] = ()

    def serialize_args(self) -> bytes:
        """Encode the bound arguments for the wire (contiguous form)."""
        return b"".join(self.serialize_args_parts())

    def serialize_args_parts(self) -> list:
        """Encode the bound arguments as a list of wire buffers.

        Each argument is encoded independently (so numpy arrays use the
        raw fast path even when mixed with scalars), with a small count +
        length framing; keyword arguments follow as name/value pairs.
        Array payloads stay :class:`memoryview` objects over the arrays'
        own storage, so scatter-gather transports never copy them.
        """
        out: list = [len(self.args).to_bytes(2, "little")]
        for arg in self.args:
            parts = serialize_parts(arg)
            total = sum(len(part) for part in parts)
            out.append(total.to_bytes(4, "little"))
            out.extend(parts)
        out.append(len(self.kwargs).to_bytes(2, "little"))
        for name, value in self.kwargs:
            name_bytes = name.encode()
            parts = serialize_parts(value)
            total = sum(len(part) for part in parts)
            out.append(len(name_bytes).to_bytes(2, "little"))
            out.append(name_bytes)
            out.append(total.to_bytes(4, "little"))
            out.extend(parts)
        return out

    @staticmethod
    def deserialize_args(data) -> tuple[tuple[Any, ...], dict[str, Any]]:
        """Decode bound arguments produced by :meth:`serialize_args`.

        Accepts any bytes-like object (``memoryview`` slices stay
        views). Returns ``(args, kwargs)``.
        """
        count = int.from_bytes(data[:2], "little")
        offset = 2
        args = []
        for _ in range(count):
            length = int.from_bytes(data[offset : offset + 4], "little")
            offset += 4
            args.append(deserialize(data[offset : offset + length]))
            offset += length
        kwargs: dict[str, Any] = {}
        kw_count = int.from_bytes(data[offset : offset + 2], "little")
        offset += 2
        for _ in range(kw_count):
            name_len = int.from_bytes(data[offset : offset + 2], "little")
            offset += 2
            name = bytes(data[offset : offset + name_len]).decode()
            offset += name_len
            length = int.from_bytes(data[offset : offset + 4], "little")
            offset += 4
            kwargs[name] = deserialize(data[offset : offset + length])
            offset += length
        return tuple(args), kwargs

    def execute(self, catalog: Catalog | None = None) -> Any:
        """Run the functor locally (host fallback / testing)."""
        cat = catalog if catalog is not None else global_catalog()
        return cat.function(self.type_name)(*self.args, **dict(self.kwargs))


def f2f(
    fn: Callable[..., Any], *args: Any, catalog: Catalog | None = None, **kwargs: Any
) -> Functor:
    """Bind ``args``/``kwargs`` to ``fn``, returning an offloadable functor.

    Raises
    ------
    HamError
        If ``fn`` is not registered as offloadable — mirroring the C++
        design where only functions going through the template machinery
        get an active-message type.
    """
    cat = catalog if catalog is not None else global_catalog()
    type_name = type_name_of(fn)
    if type_name not in cat:
        raise HamError(
            f"{type_name!r} is not offloadable; decorate it with "
            "@offloadable (it must be importable on every process image)"
        )
    return Functor(
        type_name=type_name,
        args=args,
        kwargs=tuple(sorted(kwargs.items())),
    )
