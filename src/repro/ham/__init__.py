"""HAM — Heterogeneous Active Messages.

The messaging layer underneath HAM-Offload (paper Sec. I-A and Fig. 6).
An *active message* carries an action: a **handler key** that is valid
across heterogeneous process images, plus a serialized functor (function +
bound arguments). The core trick reproduced here is the paper's
translation scheme:

1. every process image registers the same set of message types (because
   the whole application is built for both sides);
2. each image records its *local* handler addresses, which differ between
   images;
3. sorting the type-name table lexicographically yields the same order in
   every image **without any communication**, so the sorted index is a
   globally valid handler key translatable to a local address in O(1).

Public surface:

* :func:`offloadable` — decorator marking a function as remotely callable;
* :class:`ProcessImage` — one "binary": the registered types and their
  translation tables;
* :func:`f2f` / :class:`Functor` — bind a function and arguments into an
  offloadable functor (paper Table II);
* :class:`Migratable` — the type wrapper with (de)serialization hooks;
* :mod:`~repro.ham.execution` — the generic handler turning received
  bytes back into a typed call.
"""

from repro.ham.functor import Functor, f2f
from repro.ham.message import (
    MSG_ERROR,
    MSG_INVOKE,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MessageHeader,
    build_message,
    parse_message,
)
from repro.ham.registry import ProcessImage, global_catalog, offloadable
from repro.ham.serialization import (
    Migratable,
    deserialize,
    register_serializer,
    serialize,
)

__all__ = [
    "Functor",
    "MSG_ERROR",
    "MSG_INVOKE",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MessageHeader",
    "Migratable",
    "ProcessImage",
    "build_message",
    "deserialize",
    "f2f",
    "global_catalog",
    "offloadable",
    "parse_message",
    "register_serializer",
    "serialize",
]
