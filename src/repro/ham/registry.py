"""Message-type registry and cross-image handler-key translation.

This module reproduces the paper's Fig. 6 machinery. In the C++ original,
``f2f()`` triggers template instantiations that generate one active-message
type per offloaded function; a table of ``typeid`` names is built at
program initialization in *every* binary, sorted lexicographically, and the
sorted index becomes the globally valid handler key.

The Python equivalent:

* :func:`offloadable` registers a function in the process-wide
  :class:`Catalog` under a *type name* derived from its module-qualified
  name (our stand-in for the mangled ``typeid`` string);
* a :class:`ProcessImage` models one "binary": it snapshots the catalog,
  assigns image-local *handler addresses* (deliberately different between
  images, like code addresses in heterogeneous binaries), sorts the type
  names, and builds O(1) translation arrays
  ``key → local address → handler``.

Tests shuffle registration order and verify keys still agree across
images — the property the paper's scheme guarantees without any
communication.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import HamError, HandlerKeyError

__all__ = ["Catalog", "ProcessImage", "global_catalog", "offloadable", "type_name_of"]


def type_name_of(fn: Callable[..., Any]) -> str:
    """The globally comparable "typeid name" of an offloadable function.

    Mirrors the mangled-symbol names both C++ compilers agree on (the
    paper relies on Itanium-ABI-compatible name mangling): the
    module-qualified name is identical in every process importing the
    same application source.
    """
    module = getattr(fn, "__module__", None) or "<unknown>"
    qualname = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
    return f"{module}::{qualname}"


class Catalog:
    """The process-wide set of offloadable functions.

    Corresponds to what static initializers collect in each C++ binary.
    Separate catalogs can be created for tests; applications normally use
    :func:`global_catalog`.
    """

    def __init__(self) -> None:
        self._functions: dict[str, Callable[..., Any]] = {}

    def register(self, fn: Callable[..., Any], name: str | None = None) -> str:
        """Register ``fn``; returns its type name.

        Re-registering the *same* function is idempotent; registering a
        different function under an existing name is an error (two
        distinct message types may not share a typeid).
        """
        type_name = name or type_name_of(fn)
        existing = self._functions.get(type_name)
        if existing is not None and existing is not fn:
            raise HamError(
                f"type name {type_name!r} already registered for a "
                "different function"
            )
        self._functions[type_name] = fn
        return type_name

    def names(self) -> list[str]:
        """Registered type names in registration order."""
        return list(self._functions)

    def function(self, type_name: str) -> Callable[..., Any]:
        """The function behind a type name."""
        try:
            return self._functions[type_name]
        except KeyError:
            raise HamError(f"no offloadable registered as {type_name!r}") from None

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._functions

    def __len__(self) -> int:
        return len(self._functions)


_GLOBAL_CATALOG = Catalog()


def global_catalog() -> Catalog:
    """The default process-wide catalog used by :func:`offloadable`."""
    return _GLOBAL_CATALOG


def offloadable(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Decorator: mark a function as remotely executable.

    The function is registered in the global catalog under its
    module-qualified type name, the analogue of the C++ template
    instantiation chain triggered by ``f2f()`` (paper Sec. III-C). The
    function itself is returned unchanged, so it stays callable locally.
    """
    _GLOBAL_CATALOG.register(fn)
    return fn


@dataclass(frozen=True)
class _Entry:
    """One row of an image's message handler table (paper Fig. 6)."""

    type_name: str
    local_address: int
    handler: Callable[..., Any]


class ProcessImage:
    """One "binary" of the application: types + translation tables.

    Parameters
    ----------
    name:
        Image label (``"vh"``, ``"ve"``, ``"host-x86"``, ...). It seeds
        the image-local addresses so two images never agree on addresses —
        modeling heterogeneous binaries where code addresses differ.
    catalog:
        The catalog to snapshot; defaults to the global one.

    Notes
    -----
    The image must be *finalized* (:meth:`build_tables`) before keys can
    be translated; registering after finalization invalidates the tables,
    mirroring the C++ design where the tables are fixed after program
    initialization. Finalization is idempotent and cheap, so runtimes call
    it lazily.
    """

    _address_space = itertools.count(0x4000_0000)

    def __init__(self, name: str, catalog: Catalog | None = None) -> None:
        self.name = name
        self.catalog = catalog if catalog is not None else _GLOBAL_CATALOG
        self._entries: dict[str, _Entry] = {}
        self._sorted_names: list[str] = []
        self._by_key: list[_Entry] = []
        self._key_of: dict[str, int] = {}
        self._finalized = False
        # Image-local address salt: distinct per image instance.
        self._address_base = next(self._address_space) * 0x1000

    # -- building ---------------------------------------------------------
    def snapshot_catalog(self) -> None:
        """Pull every catalog function into the image's handler table."""
        for type_name in self.catalog.names():
            self._add_entry(type_name, self.catalog.function(type_name))

    def _add_entry(self, type_name: str, fn: Callable[..., Any]) -> None:
        if type_name not in self._entries:
            local_address = self._address_base + len(self._entries) * 0x40
            self._entries[type_name] = _Entry(type_name, local_address, fn)
            self._finalized = False

    def build_tables(self) -> None:
        """Sort type names and build the O(1) translation arrays.

        Lexicographic order is identical in every image holding the same
        type set, so the sorted index is the globally valid handler key —
        no communication needed (paper Sec. III-E).
        """
        if self._finalized:
            return
        if not self._entries:
            self.snapshot_catalog()
        self._sorted_names = sorted(self._entries)
        self._by_key = [self._entries[n] for n in self._sorted_names]
        self._key_of = {n: k for k, n in enumerate(self._sorted_names)}
        self._finalized = True

    # -- queries ------------------------------------------------------------
    @property
    def num_types(self) -> int:
        """Number of registered message types."""
        return len(self._entries)

    def key_for(self, type_name: str) -> int:
        """Globally valid handler key of a type name.

        Raises
        ------
        HandlerKeyError
            If the type is unknown to this image.
        """
        self.build_tables()
        try:
            return self._key_of[type_name]
        except KeyError:
            raise HandlerKeyError(
                f"image {self.name!r} has no message type {type_name!r}"
            ) from None

    def entry_for_key(self, key: int) -> _Entry:
        """Translate a received key to the local table row (O(1))."""
        self.build_tables()
        if not 0 <= key < len(self._by_key):
            raise HandlerKeyError(
                f"image {self.name!r}: handler key {key} outside table "
                f"of {len(self._by_key)} entries"
            )
        return self._by_key[key]

    def handler_for_key(self, key: int) -> Callable[..., Any]:
        """The local handler function behind a received key (O(1))."""
        return self.entry_for_key(key).handler

    def local_address_of(self, type_name: str) -> int:
        """The image-local "code address" of a type's handler.

        Only meaningful within this image — the point of the whole
        translation exercise.
        """
        self.build_tables()
        entry = self._entries.get(type_name)
        if entry is None:
            raise HandlerKeyError(
                f"image {self.name!r} has no message type {type_name!r}"
            )
        return entry.local_address

    def type_names(self) -> list[str]:
        """Type names in key order (sorted)."""
        self.build_tables()
        return list(self._sorted_names)

    def digest(self) -> bytes:
        """Fingerprint of the image's type set.

        Two images translate keys consistently **iff** their digests
        match; backends exchange it at connection time to fail fast on
        mismatched "binaries" instead of silently dispatching to wrong
        handlers.
        """
        import hashlib

        self.build_tables()
        return hashlib.sha256("\n".join(self._sorted_names).encode()).digest()
