"""Serialization of active-message payloads.

The paper (Sec. I-A): "*Function arguments and return values are
transported inside the active message. A special type wrapper provides
hooks to transparently do serialisation and de-serialisation of (complex)
data types if necessary.*"

Three mechanisms, tried in order:

1. **custom serializers** registered per type via
   :func:`register_serializer` (the "type wrapper hooks");
2. a **numpy fast path** — arrays are encoded as a small dtype/shape
   header plus their raw bytes, avoiding pickle overhead for the large
   payloads HPC codes ship;
3. **pickle** for everything else.

The wire encoding is self-describing: a one-byte tag selects the decoder.

Zero-copy contract: :func:`serialize_parts` returns the encoding as a
list of buffers — for the numpy fast path the array's own memory rides
along as a :class:`memoryview`, so a scatter-gather transport can hand
it to the kernel without ever calling ``tobytes()`` on a large
contiguous array. Decoders accept any bytes-like object (``bytes``,
``bytearray``, ``memoryview``), and :func:`deserialize` of a numpy
payload materializes exactly one writable copy.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Type

import numpy as np

from repro.errors import SerializationError
from repro.telemetry import recorder as telemetry

__all__ = [
    "Migratable",
    "deserialize",
    "register_serializer",
    "serialize",
    "serialize_parts",
]

#: Anything the decoders accept.
BytesLike = "bytes | bytearray | memoryview"

_TAG_PICKLE = b"P"
_TAG_NUMPY = b"N"
_TAG_CUSTOM = b"C"
_TAG_MIGRATABLE = b"M"

#: type -> (name, encode, decode); name is transferred on the wire.
_CUSTOM: dict[Type[Any], tuple[str, Callable[[Any], bytes], Callable[[bytes], Any]]] = {}
_CUSTOM_BY_NAME: dict[str, Callable[[bytes], Any]] = {}


def register_serializer(
    cls: Type[Any],
    name: str,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
) -> None:
    """Register a custom (de)serializer for ``cls``.

    ``name`` must be identical in every process image (it travels on the
    wire); re-registering a name replaces the previous pair.
    """
    _CUSTOM[cls] = (name, encode, decode)
    _CUSTOM_BY_NAME[name] = decode


class Migratable:
    """Base class for objects bringing their own (de)serialization hooks.

    Subclasses implement :meth:`__serialize__` returning bytes and the
    classmethod :meth:`__deserialize__` rebuilding the instance. The
    subclass must be importable under the same module path in every
    process image (same rule as for offloadable functions).
    """

    def __serialize__(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def __deserialize__(cls, data: bytes) -> "Migratable":
        raise NotImplementedError


def _encode_numpy_parts(arr: np.ndarray) -> list:
    """Numpy fast-path encoding as ``[prefix, raw-data-view]``.

    The second part is a flat :class:`memoryview` over the array's own
    (contiguous) storage — no ``tobytes()`` copy. The view keeps the
    array alive for as long as the parts list is referenced.
    """
    if arr.dtype.hasobject:
        raise SerializationError("cannot serialize object-dtype arrays raw")
    contiguous = np.ascontiguousarray(arr)
    header = pickle.dumps((str(contiguous.dtype), contiguous.shape), protocol=4)
    prefix = _TAG_NUMPY + len(header).to_bytes(4, "little") + header
    if contiguous.nbytes == 0:
        return [prefix]
    return [prefix, contiguous.data.cast("B")]


def _decode_numpy(data) -> np.ndarray:
    header_len = int.from_bytes(data[:4], "little")
    dtype_str, shape = pickle.loads(data[4 : 4 + header_len])
    payload = data[4 + header_len :]
    # Single copy: decode into writable bytearray-backed storage instead
    # of building a read-only frombuffer view and copying it again.
    storage = bytearray(payload)
    return np.frombuffer(storage, dtype=np.dtype(dtype_str)).reshape(shape)


def serialize(value: Any) -> bytes:
    """Encode ``value`` into self-describing bytes.

    Raises
    ------
    SerializationError
        If the value cannot be encoded by any mechanism.
    """
    parts = serialize_parts(value)
    data = parts[0] if len(parts) == 1 else b"".join(parts)
    return data if isinstance(data, bytes) else bytes(data)


def serialize_parts(value: Any) -> list:
    """Encode ``value`` as a list of buffers (``bytes`` / ``memoryview``).

    Equivalent to :func:`serialize` concatenated, but numpy array data
    is returned as a view on the array's own storage so scatter-gather
    transports can send it without an intermediate copy.
    """
    parts = _serialize_parts(value)
    recorder = telemetry.get()
    if recorder is not None:
        metrics = recorder.metrics
        metrics.counter("serialize.calls").inc()
        metrics.counter("serialize.bytes").inc(sum(len(p) for p in parts))
    return parts


def _serialize_parts(value: Any) -> list:
    if (
        isinstance(value, np.ndarray)
        and not isinstance(value, Migratable)
        and type(value) not in _CUSTOM
    ):
        return _encode_numpy_parts(value)
    return [_serialize(value)]


def _serialize(value: Any) -> bytes:
    custom = _CUSTOM.get(type(value))
    if custom is not None:
        name, encode, _decode = custom
        try:
            body = encode(value)
        except Exception as exc:  # noqa: BLE001 - user hook failed
            raise SerializationError(
                f"custom serializer {name!r} failed: {exc}"
            ) from exc
        name_bytes = name.encode()
        return (
            _TAG_CUSTOM + len(name_bytes).to_bytes(2, "little") + name_bytes + body
        )
    if isinstance(value, Migratable):
        cls = type(value)
        path = f"{cls.__module__}:{cls.__qualname__}"
        body = value.__serialize__()
        path_bytes = path.encode()
        return (
            _TAG_MIGRATABLE
            + len(path_bytes).to_bytes(2, "little")
            + path_bytes
            + body
        )
    if isinstance(value, np.ndarray):
        return b"".join(_encode_numpy_parts(value))
    try:
        return _TAG_PICKLE + pickle.dumps(value, protocol=4)
    except Exception as exc:  # noqa: BLE001 - unpicklable
        raise SerializationError(f"cannot serialize {type(value).__name__}: {exc}") from exc


def _load_migratable_class(path: str) -> Type[Migratable]:
    import importlib

    module_name, _, qualname = path.partition(":")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError, ValueError, TypeError) as exc:
        raise SerializationError(f"cannot import migratable class {path!r}") from exc
    if not (isinstance(obj, type) and issubclass(obj, Migratable)):
        raise SerializationError(f"{path!r} is not a Migratable subclass")
    return obj


def deserialize(data) -> Any:
    """Decode a buffer produced by :func:`serialize`.

    Accepts any bytes-like object; ``memoryview`` input is decoded
    without an upfront copy (slices stay views until a decoder needs
    real bytes).

    Raises
    ------
    SerializationError
        On unknown tags, truncated frames or failing hooks.
    """
    recorder = telemetry.get()
    if recorder is not None:
        metrics = recorder.metrics
        metrics.counter("deserialize.calls").inc()
        metrics.counter("deserialize.bytes").inc(len(data))
    return _deserialize(data)


def _deserialize(data) -> Any:
    if not len(data):
        raise SerializationError("empty payload")
    tag, body = bytes(data[:1]), data[1:]
    if tag == _TAG_PICKLE:
        try:
            return pickle.loads(body)
        except Exception as exc:  # noqa: BLE001 - corrupt frame
            raise SerializationError(f"pickle decode failed: {exc}") from exc
    if tag == _TAG_NUMPY:
        try:
            return _decode_numpy(body)
        except SerializationError:
            raise
        except Exception as exc:  # noqa: BLE001 - corrupt frame
            raise SerializationError(f"numpy decode failed: {exc}") from exc
    if tag == _TAG_CUSTOM:
        if len(body) < 2:
            raise SerializationError("truncated custom frame")
        name_len = int.from_bytes(body[:2], "little")
        try:
            name = bytes(body[2 : 2 + name_len]).decode()
        except UnicodeDecodeError as exc:
            raise SerializationError(f"corrupt custom-serializer name: {exc}") from exc
        decode = _CUSTOM_BY_NAME.get(name)
        if decode is None:
            raise SerializationError(f"no custom serializer named {name!r}")
        try:
            # User hooks are promised real bytes (their documented
            # contract predates memoryview framing).
            return decode(bytes(body[2 + name_len :]))
        except SerializationError:
            raise
        except Exception as exc:  # noqa: BLE001 - user hook failed
            raise SerializationError(f"custom decoder {name!r} failed: {exc}") from exc
    if tag == _TAG_MIGRATABLE:
        if len(body) < 2:
            raise SerializationError("truncated migratable frame")
        path_len = int.from_bytes(body[:2], "little")
        try:
            path = bytes(body[2 : 2 + path_len]).decode()
        except UnicodeDecodeError as exc:
            raise SerializationError(f"corrupt migratable class path: {exc}") from exc
        cls = _load_migratable_class(path)
        try:
            return cls.__deserialize__(bytes(body[2 + path_len :]))
        except SerializationError:
            raise
        except Exception as exc:  # noqa: BLE001 - user hook failed
            raise SerializationError(
                f"migratable decoder for {path!r} failed: {exc}"
            ) from exc
    raise SerializationError(f"unknown payload tag {tag!r}")
