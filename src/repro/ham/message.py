"""Active-message wire format.

Fixed little-endian header followed by the payload::

    offset  size  field
    0       2     magic 0x48 0x4D ("HM")
    2       1     version (1)
    3       1     kind (INVOKE / RESULT / ERROR / SHUTDOWN)
    4       8     handler key (INVOKE) or 0
    12      8     message id (matches results to futures)
    20      4     payload length
    24      ...   payload

The header is what the paper's protocols move through message buffers;
the handler key field is the "globally valid handler key" of Fig. 6.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import SerializationError

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "MSG_ERROR",
    "MSG_INVOKE",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MessageHeader",
    "build_message",
    "parse_message",
]

MAGIC = b"HM"
_VERSION = 1
_HEADER = struct.Struct("<2sBBQQI")
HEADER_SIZE = _HEADER.size

MSG_INVOKE = 1
MSG_RESULT = 2
MSG_ERROR = 3
MSG_SHUTDOWN = 4

_KINDS = {MSG_INVOKE, MSG_RESULT, MSG_ERROR, MSG_SHUTDOWN}


@dataclass(frozen=True)
class MessageHeader:
    """Parsed header of one active message."""

    kind: int
    handler_key: int
    msg_id: int
    payload_len: int


def build_message(kind: int, handler_key: int, msg_id: int, payload: bytes) -> bytes:
    """Assemble one wire message."""
    if kind not in _KINDS:
        raise SerializationError(f"invalid message kind {kind}")
    if handler_key < 0 or msg_id < 0:
        raise SerializationError("handler key and message id must be non-negative")
    return _HEADER.pack(MAGIC, _VERSION, kind, handler_key, msg_id, len(payload)) + payload


def parse_message(data: bytes) -> tuple[MessageHeader, bytes]:
    """Split wire bytes into ``(header, payload)``.

    Raises
    ------
    SerializationError
        On bad magic, unsupported version, truncation or trailing bytes.
    """
    if len(data) < HEADER_SIZE:
        raise SerializationError(
            f"message truncated: {len(data)} bytes < header size {HEADER_SIZE}"
        )
    magic, version, kind, handler_key, msg_id, payload_len = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SerializationError(f"bad message magic {magic!r}")
    if version != _VERSION:
        raise SerializationError(f"unsupported message version {version}")
    if kind not in _KINDS:
        raise SerializationError(f"invalid message kind {kind}")
    payload = data[HEADER_SIZE : HEADER_SIZE + payload_len]
    if len(payload) != payload_len:
        raise SerializationError(
            f"message truncated: payload {len(payload)} bytes < declared {payload_len}"
        )
    header = MessageHeader(
        kind=kind, handler_key=handler_key, msg_id=msg_id, payload_len=payload_len
    )
    return header, payload
