"""Active-message wire format.

Fixed little-endian header followed by the payload. Two header versions
are in service:

Version 1 (24 bytes, the original layout)::

    offset  size  field
    0       2     magic 0x48 0x4D ("HM")
    2       1     version (1)
    3       1     kind (INVOKE / RESULT / ERROR / SHUTDOWN)
    4       8     handler key (INVOKE) or 0
    12      8     message id (matches results to futures)
    20      4     payload length
    24      ...   payload

Version 2 (49 bytes) appends the distributed trace context — the header
is the one structure that always crosses the host/target boundary, which
makes it the natural carrier (HAM treats the header the same way)::

    24      16    trace id (128-bit, big-endian; zero = no trace)
    40      8     parent span id (the sender span that built the message)
    48      1     trace flags (bit 0: sampled)
    49      ...   payload

:func:`build_message` emits version 1 whenever no trace context is given
— untraced messages pay zero header growth — and version 2 only when a
trace rides along. :func:`parse_message` accepts both, so a peer that
predates tracing (or runs with telemetry off) interoperates in both
directions.

The header is what the paper's protocols move through message buffers;
the handler key field is the "globally valid handler key" of Fig. 6.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import SerializationError

__all__ = [
    "HEADER_SIZE",
    "HEADER_SIZE_V2",
    "MAGIC",
    "MSG_ERROR",
    "MSG_INVOKE",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MessageHeader",
    "build_message",
    "build_message_parts",
    "parse_message",
    "peek_trace",
    "peek_trace_flags",
]

MAGIC = b"HM"
_VERSION_1 = 1
_VERSION_2 = 2
_HEADER_V1 = struct.Struct("<2sBBQQI")
_HEADER_V2 = struct.Struct("<2sBBQQI16sQB")
HEADER_SIZE = _HEADER_V1.size
HEADER_SIZE_V2 = _HEADER_V2.size

MSG_INVOKE = 1
MSG_RESULT = 2
MSG_ERROR = 3
MSG_SHUTDOWN = 4

_KINDS = {MSG_INVOKE, MSG_RESULT, MSG_ERROR, MSG_SHUTDOWN}


@dataclass(frozen=True)
class MessageHeader:
    """Parsed header of one active message.

    ``trace_id`` / ``parent_span_id`` / ``trace_flags`` are zero for
    version-1 messages (no trace context on the wire).
    """

    kind: int
    handler_key: int
    msg_id: int
    payload_len: int
    trace_id: int = 0
    parent_span_id: int = 0
    trace_flags: int = 0


def build_message_parts(
    kind: int,
    handler_key: int,
    msg_id: int,
    payload_parts: list,
    *,
    trace_id: int = 0,
    parent_span_id: int = 0,
    trace_flags: int = 0,
) -> list:
    """Assemble one wire message as ``[header, *payload_parts]``.

    The scatter-gather form of :func:`build_message`: the payload stays
    a list of buffers (``bytes`` / ``memoryview``), so a transport with
    vectored I/O (``sendmsg``) ships large array data straight from its
    owner's storage without concatenating. ``payload_len`` in the header
    is the sum of the part lengths.
    """
    if kind not in _KINDS:
        raise SerializationError(f"invalid message kind {kind}")
    if handler_key < 0 or msg_id < 0:
        raise SerializationError("handler key and message id must be non-negative")
    payload_len = sum(len(part) for part in payload_parts)
    if trace_id == 0:
        header = _HEADER_V1.pack(
            MAGIC, _VERSION_1, kind, handler_key, msg_id, payload_len
        )
        return [header, *payload_parts]
    if not 0 < trace_id < 1 << 128:
        raise SerializationError(f"trace id must be a 128-bit int, got {trace_id:#x}")
    if not 0 <= parent_span_id < 1 << 64:
        raise SerializationError(
            f"parent span id must fit in 64 bits, got {parent_span_id:#x}"
        )
    header = _HEADER_V2.pack(
        MAGIC,
        _VERSION_2,
        kind,
        handler_key,
        msg_id,
        payload_len,
        trace_id.to_bytes(16, "big"),
        parent_span_id,
        trace_flags & 0xFF,
    )
    return [header, *payload_parts]


def build_message(
    kind: int,
    handler_key: int,
    msg_id: int,
    payload: bytes,
    *,
    trace_id: int = 0,
    parent_span_id: int = 0,
    trace_flags: int = 0,
) -> bytes:
    """Assemble one wire message.

    A non-zero ``trace_id`` selects the version-2 header and stamps the
    trace context fields; otherwise the compact version-1 header is
    emitted unchanged from the original format.
    """
    return b"".join(
        build_message_parts(
            kind,
            handler_key,
            msg_id,
            [payload],
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            trace_flags=trace_flags,
        )
    )


def peek_trace(data) -> tuple[int, int, int] | None:
    """Trace fields of a message without parsing the payload.

    Returns ``(trace_id, parent_span_id, trace_flags)`` for a version-2
    message; ``None`` for version-1 messages (no trace context on the
    wire) and for anything too short or foreign to carry the v2 header.
    Peeking never raises, so transports can consult the sampled bit
    before deciding whether to open server-side spans for a message they
    have not validated yet.
    """
    if len(data) < HEADER_SIZE_V2:
        return None
    magic, version = _HEADER_V1.unpack_from(data)[:2]
    if magic != MAGIC or version != _VERSION_2:
        return None
    trace_bytes, parent_span_id, trace_flags = _HEADER_V2.unpack_from(data)[6:]
    return int.from_bytes(trace_bytes, "big"), parent_span_id, trace_flags


def peek_trace_flags(data) -> int | None:
    """Just the trace flag byte of :func:`peek_trace` (``None`` for v1)."""
    peeked = peek_trace(data)
    return None if peeked is None else peeked[2]


def parse_message(data) -> tuple[MessageHeader, bytes]:
    """Split wire bytes into ``(header, payload)``.

    Accepts both header versions: a version-1 message (no trace context,
    e.g. from a sender running with telemetry off or a pre-tracing
    build) parses with zeroed trace fields. ``data`` may be any
    bytes-like object; a ``memoryview`` input yields the payload as a
    zero-copy view.

    Raises
    ------
    SerializationError
        On bad magic, unsupported version, truncation or trailing bytes.
    """
    if len(data) < HEADER_SIZE:
        raise SerializationError(
            f"message truncated: {len(data)} bytes < header size {HEADER_SIZE}"
        )
    magic, version, kind, handler_key, msg_id, payload_len = _HEADER_V1.unpack_from(data)
    if magic != MAGIC:
        raise SerializationError(f"bad message magic {magic!r}")
    trace_id = 0
    parent_span_id = 0
    trace_flags = 0
    if version == _VERSION_1:
        header_size = HEADER_SIZE
    elif version == _VERSION_2:
        header_size = HEADER_SIZE_V2
        if len(data) < header_size:
            raise SerializationError(
                f"message truncated: {len(data)} bytes < v2 header size {header_size}"
            )
        (_m, _v, _k, _hk, _mid, _pl,
         trace_bytes, parent_span_id, trace_flags) = _HEADER_V2.unpack_from(data)
        trace_id = int.from_bytes(trace_bytes, "big")
    else:
        raise SerializationError(f"unsupported message version {version}")
    if kind not in _KINDS:
        raise SerializationError(f"invalid message kind {kind}")
    payload = data[header_size : header_size + payload_len]
    if len(payload) != payload_len:
        raise SerializationError(
            f"message truncated: payload {len(payload)} bytes < declared {payload_len}"
        )
    header = MessageHeader(
        kind=kind,
        handler_key=handler_key,
        msg_id=msg_id,
        payload_len=payload_len,
        trace_id=trace_id,
        parent_span_id=parent_span_id,
        trace_flags=trace_flags,
    )
    return header, payload
