"""Tracing support for the simulation kernel.

A :class:`Tracer` attached to a :class:`~repro.sim.core.Simulator` records
labelled spans and point events with virtual timestamps. The benchmark
harness uses traces to decompose offload cost into protocol phases
(serialize, flag write, DMA fetch, execute, ...), reproducing the paper's
"6.1 µs = 1.2 µs PCIe + ~5 µs framework" breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.core import Event, Simulator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Virtual time of the record (span end for spans).
    kind:
        ``"point"`` or ``"span"``.
    label:
        Free-form label, e.g. ``"dma.fetch"``.
    duration:
        Span length in seconds (0 for points).
    detail:
        Optional structured payload.
    """

    time: float
    kind: str
    label: str
    duration: float = 0.0
    detail: Any = None


class Tracer:
    """Collects :class:`TraceRecord` entries from a simulator.

    The tracer can optionally observe every fired kernel event
    (``record_events=True``); by default it only stores explicit
    :meth:`point` and :meth:`span` records, which keeps long benchmark runs
    cheap.
    """

    def __init__(self, record_events: bool = False) -> None:
        self.records: list[TraceRecord] = []
        self.record_events = record_events
        self._sim: Simulator | None = None
        self._fired_events = 0

    # -- attachment ---------------------------------------------------------
    def attach(self, sim: Simulator) -> "Tracer":
        """Attach to ``sim`` (replacing any previous tracer)."""
        sim.tracer = self
        self._sim = sim
        return self

    def detach(self) -> None:
        """Detach from the simulator."""
        if self._sim is not None and self._sim.tracer is self:
            self._sim.tracer = None
        self._sim = None

    # -- kernel hook ----------------------------------------------------------
    def _on_fire(self, now: float, event: Event) -> None:
        self._fired_events += 1
        if self.record_events:
            self.records.append(
                TraceRecord(time=now, kind="event", label=type(event).__name__)
            )

    @property
    def fired_events(self) -> int:
        """Total number of kernel events fired while attached."""
        return self._fired_events

    # -- explicit records -----------------------------------------------------
    def point(self, label: str, detail: Any = None) -> None:
        """Record a point occurrence at the current virtual time."""
        assert self._sim is not None, "tracer not attached"
        self.records.append(
            TraceRecord(time=self._sim.now, kind="point", label=label, detail=detail)
        )

    def span(self, label: str, start: float, detail: Any = None) -> None:
        """Record a span from ``start`` to the current virtual time."""
        assert self._sim is not None, "tracer not attached"
        now = self._sim.now
        self.records.append(
            TraceRecord(
                time=now, kind="span", label=label, duration=now - start, detail=detail
            )
        )

    # -- queries ----------------------------------------------------------------
    def spans(self, label_prefix: str = "") -> list[TraceRecord]:
        """All span records whose label starts with ``label_prefix``."""
        return [
            r
            for r in self.records
            if r.kind == "span" and r.label.startswith(label_prefix)
        ]

    def total_duration(self, label_prefix: str = "") -> float:
        """Sum of span durations matching ``label_prefix``."""
        return sum(r.duration for r in self.spans(label_prefix))

    def clear(self) -> None:
        """Drop all records (keeps the attachment)."""
        self.records.clear()
