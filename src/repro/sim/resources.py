"""Shared-resource primitives for the simulation kernel.

These model contention points of the simulated platform:

* :class:`Resource` — a counted resource (mutex for ``capacity=1``); models
  e.g. the single privileged DMA engine shared by all cores of a VE.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects; models
  command queues such as the VEO context queue.
* :class:`Channel` — a rendezvous pipe with simulated transfer delay,
  convenient for loosely modeled host<->daemon communication.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from repro.errors import ProcessError
from repro.sim.core import Event, Simulator

__all__ = ["Resource", "Store", "Channel"]


class Resource:
    """A counted, FIFO-fair resource.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ...  # critical section
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires once a unit is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held unit, handing it to the next waiter if any.

        Waiters whose process was interrupted while queued are skipped
        (their grant event has been deregistered); otherwise the unit
        would be handed to a dead process and leak.
        """
        if self._in_use <= 0:
            raise ProcessError("release() without matching request()")
        while self._waiters:
            event = self._waiters.popleft()
            if event.callbacks:  # still awaited by a live process
                event.succeed()
                return
        self._in_use -= 1

    def acquire(self) -> Generator[Event, Any, None]:
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()


class Store:
    """A FIFO store of items with blocking get and (optionally) put.

    ``put`` returns an event that fires when the item has been accepted
    (immediately unless the store is bounded and full); ``get`` returns an
    event that fires with the next item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; the returned event fires on acceptance."""
        event = self.sim.event()
        if self._getters:
            # Hand directly to a waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Request the next item; the returned event fires with it."""
        event = self.sim.event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, pending = self._putters.popleft()
                self._items.append(pending)
                put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, pending = self._putters.popleft()
                self._items.append(pending)
                put_event.succeed()
            return True, item
        return False, None


class Channel:
    """A unidirectional message channel with a fixed transfer delay.

    ``send(msg)`` makes ``msg`` available to ``recv()`` after ``delay``
    seconds of virtual time. Used for coarse models (e.g. VEOS daemon IPC)
    where per-byte fidelity is not needed.
    """

    def __init__(self, sim: Simulator, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.sim = sim
        self.delay = delay
        self._store = Store(sim)

    def send(self, message: Any) -> Event:
        """Send ``message``; the returned event fires once it is en route."""
        if self.delay == 0.0:
            return self._store.put(message)
        done = self.sim.event()

        def deliver(_ev: Event) -> None:
            self._store.put(message)
            done.succeed()

        self.sim.timeout(self.delay).callbacks.append(deliver)  # type: ignore[union-attr]
        return done

    def recv(self) -> Event:
        """Receive the next message; the returned event fires with it."""
        return self._store.get()
