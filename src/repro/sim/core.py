"""Core of the discrete-event simulation kernel.

The design follows the classic event-loop architecture also used by SimPy:

* an :class:`Event` is a one-shot occurrence with a value and a list of
  callbacks;
* a :class:`Process` wraps a Python generator; every ``yield``\\ ed event
  suspends the process until the event fires, at which point the event's
  value is sent back into the generator;
* the :class:`Simulator` holds a priority queue of ``(time, priority, seq,
  event)`` entries and advances virtual time by popping the earliest entry.

Time is a ``float`` in **seconds**; the hardware models in :mod:`repro.hw`
charge micro- and nanosecond costs onto this clock.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.errors import DeadlockError, ProcessError, SimTimeError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Simulator",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot simulation event.

    An event goes through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled to fire; has a value), and
    *processed* (callbacks have run). Processes wait for events by
    ``yield``-ing them.

    Parameters
    ----------
    sim:
        The owning simulator.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event has fired and its callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``False`` if the event carries a failure (an exception value)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if :attr:`ok` is false)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise ProcessError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay=delay)
        return self

    def fail(self, exc: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger the event as a failure carrying ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._triggered:
            raise ProcessError(f"{self!r} already triggered")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay=delay)
        return self

    def _fire(self) -> None:
        """Run callbacks; called by the simulator when the event is popped."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimTimeError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay=delay)


class Initialize(Event):
    """Internal: starts a :class:`Process` on the next simulator step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._triggered = True
        self.callbacks.append(process._resume)  # type: ignore[union-attr]
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """A simulation process wrapping a generator.

    The process itself is an event that fires when the generator returns
    (value = the generator's return value) or raises (failure). This lets
    processes wait for each other by ``yield``-ing another process.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self, sim: "Simulator", generator: Generator[Event, Any, Any], name: str = ""
    ) -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A process may only be interrupted while alive and suspended on an
        event; interrupting a finished process is an error.
        """
        if self._triggered:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        event = Event(self.sim)
        event._triggered = True
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)  # type: ignore[union-attr]
        # The interrupt must win over the event the process is waiting on.
        self.sim._schedule(event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired ``event``'s value."""
        # If we were resumed by an interrupt while also registered on a
        # regular event, deregister from that event.
        waited = self._waiting_on
        if waited is not None and waited is not event and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            raise ProcessError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
        if target.callbacks is None:
            # Already processed: resume immediately on the next step with
            # the event's (possibly failed) value.
            relay = Event(self.sim)
            relay._triggered = True
            relay._ok = target.ok
            relay._value = target.value
            relay.callbacks.append(self._resume)  # type: ignore[union-attr]
            self.sim._schedule(relay, priority=URGENT)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base class for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self._events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires.

    The value is a dict mapping the already-fired events to their values.
    A failure of any constituent fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all constituent events have fired.

    The value is a dict mapping every event to its value. A failure of any
    constituent fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed({ev: ev.value for ev in self._events})


class Simulator:
    """The discrete-event simulator: virtual clock plus event queue.

    Notes
    -----
    The simulator is *host-drivable*: besides the classic ``run(until=...)``
    it supports :meth:`run_until`, which advances the clock until an
    arbitrary predicate over simulation state becomes true. The offload
    backends use this to interleave imperative host-side API calls with the
    simulated target-side message loop.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self.tracer = None  # set by sim.trace.Tracer.attach

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process from ``generator``; returns its event."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, *, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimTimeError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Pop and fire the earliest scheduled event."""
        if not self._queue:
            raise DeadlockError("no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        assert when >= self._now, "event queue corrupted: time went backwards"
        self._now = when
        if self.tracer is not None:
            self.tracer._on_fire(self._now, event)
        event._fire()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain;
            a ``float``
                run until the clock reaches that time;
            an :class:`Event`
                run until that event has been processed and return its
                value (re-raising if the event failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._queue:
                    raise DeadlockError(
                        f"simulation ran dry before {until!r} fired"
                    )
                self.step()
            if not until.ok:
                raise until.value
            return until.value
        if until < self._now:
            raise SimTimeError(f"cannot run until {until!r} < now={self._now!r}")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self._now = max(self._now, until)
        return None

    def run_until(
        self,
        predicate: Callable[[], bool],
        *,
        limit: float = float("inf"),
        max_steps: int = 50_000_000,
    ) -> bool:
        """Advance until ``predicate()`` is true.

        Returns ``True`` if the predicate became true, ``False`` if the
        event queue ran dry or virtual time exceeded ``limit`` first.

        Raises
        ------
        DeadlockError
            If ``max_steps`` events fire without the predicate becoming
            true (guards against accidental infinite polling loops).
        """
        steps = 0
        while not predicate():
            if not self._queue or self.peek() > limit:
                return False
            self.step()
            steps += 1
            if steps >= max_steps:
                raise DeadlockError(
                    f"run_until exceeded {max_steps} steps at t={self._now}"
                )
        return True
