"""Discrete-event simulation kernel.

A small, dependency-free discrete-event simulator in the style of SimPy,
built from scratch because the evaluation platform of the reproduced paper
(the NEC SX-Aurora TSUBASA) is not available as hardware. Simulation
*processes* are Python generators that ``yield`` events; the
:class:`~repro.sim.core.Simulator` advances virtual time from event to
event.

Public surface
--------------
:class:`Simulator`
    The event loop: virtual clock, scheduling, ``run``/``run_until``.
:class:`Event`, :class:`Timeout`, :class:`Process`
    The event primitives processes are built from.
:class:`AnyOf`, :class:`AllOf`
    Composite condition events.
:class:`Resource`, :class:`Store`, :class:`Channel`
    Shared-resource primitives (mutex/server pool, FIFO store, rendezvous
    channel) used to model DMA engines, command queues and link arbitration.
:class:`Tracer`
    Structured tracing of simulation events for statistics and debugging.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Channel, Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
